// Ablation A1 (DESIGN.md): how much of the PIM linked-list's win comes from
// the combining optimization, and how does it depend on batch size?
//
// The simulator's PIM core combines whatever has already been delivered to
// its mailbox; we sweep the thread count (which controls the achievable
// batch) and report the effective speedup over the naive PIM list, along
// with the paper's idealized bound 2(n - S_p)/(n + 1) ... inverted: the
// combining list serves p requests in one traversal of ~(n - S_p) hops vs
// p traversals of (n+1)/2 hops.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "model/linked_list_model.hpp"
#include "sim/ds/linked_lists.hpp"

int main(int argc, char** argv) {
  using namespace pimds;
  using namespace pimds::bench;

  JsonReporter json(argc, argv, "ablation_combining");
  banner("Ablation A1: combining optimization of the PIM linked-list");
  constexpr std::size_t kListSize = 400;

  Table table({"threads", "PIM no-comb", "PIM comb", "speedup",
               "model speedup"},
              15);
  table.print_header();
  for (std::size_t p : {1, 2, 4, 8, 16, 28}) {
    sim::ListConfig cfg;
    cfg.num_cpus = p;
    cfg.key_range = 2 * kListSize;
    cfg.initial_size = kListSize;
    cfg.duration_ns = 20'000'000;
    const double plain = sim::run_pim_list(cfg, false).ops_per_sec();
    const double comb = sim::run_pim_list(cfg, true).ops_per_sec();
    const double model_speedup =
        model::pim_list_combining(cfg.params, kListSize, p) /
        model::pim_list_no_combining(cfg.params, kListSize);
    char ms[32];
    std::snprintf(ms, sizeof(ms), "%.2fx", model_speedup);
    table.print_row({std::to_string(p), mops(plain), mops(comb),
                     ratio(comb, plain), ms});
    const JsonReporter::Params params{{"threads", std::to_string(p)}};
    json.record("pim_nocomb_p" + std::to_string(p), params, plain);
    json.record("pim_comb_p" + std::to_string(p), params, comb);
  }

  std::printf(
      "\nReading: with one client there is nothing to combine (speedup ~1);\n"
      "the speedup grows with p and tracks the model's p(n+1)/(2(n-S_p)).\n");
  return 0;
}
