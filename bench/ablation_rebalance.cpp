// Ablation A5 (DESIGN.md): skip-list rebalancing under skew
// (Section 4.2.1), on the REAL-thread PIM emulation.
//
// A Zipf-distributed workload concentrates requests on the lowest key
// range, overloading one vault. We run the partitioned PIM skip-list with
// static partitions, observe the imbalance, then split the hot partition
// with the non-blocking migration protocol — while the workload keeps
// running — and measure throughput before and after.
// `--active` swaps the manual operator split for the closed loop: the
// AutoRebalancer's ACTIVE mode (with contention-adaptive combining) watches
// the LoadMap and drives the same migration protocol itself. Run with
// --telemetry and check the stream with
// scripts/telemetry_report.py --assert-rebalance-settles: the windows must
// go hot -> migrated -> settled.
#include <atomic>
#include <cstdio>
#include <cstring>
#include <algorithm>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "common/timing.hpp"
#include "common/zipf.hpp"
#include "core/auto_rebalancer.hpp"
#include "core/pim_skiplist.hpp"

int main(int argc, char** argv) {
  using namespace pimds;
  using namespace pimds::bench;

  JsonReporter json(argc, argv, "ablation_rebalance");
  bool active = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--active") == 0) active = true;
  }
  banner(active ? "Ablation A5: PIM skip-list ACTIVE auto-rebalancing "
                  "under Zipf skew (real threads)"
                : "Ablation A5: PIM skip-list rebalancing under Zipf skew "
                  "(real threads)");
  constexpr std::uint64_t kKeyMax = 1 << 16;
  constexpr std::size_t kVaults = 4;
  constexpr int kCpuThreads = 2;  // the host has 2 cores

  runtime::PimSystem::Config config;
  config.num_vaults = kVaults;
  runtime::PimSystem system(config);
  core::PimSkipList::Options options;
  options.key_max = kKeyMax;
  core::PimSkipList list(system, options);
  system.start();

  // Preload half the key space.
  {
    Xoshiro256 rng(1);
    for (int i = 0; i < 20000; ++i) list.add(rng.next_in(1, kKeyMax));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ops{0};
  std::vector<std::thread> cpus;
  for (int t = 0; t < kCpuThreads; ++t) {
    cpus.emplace_back([&, t] {
      Xoshiro256 rng(100 + t);
      ZipfGenerator zipf(kKeyMax, 0.99);  // rank 0 = key 1: vault 0 is hot
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t key = zipf.next(rng) + 1;
        switch (rng.next_below(3)) {
          case 0: list.add(key); break;
          case 1: list.remove(key); break;
          default: list.contains(key);
        }
        ops.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  const auto measure = [&](const char* phase, double seconds) {
    const std::uint64_t before = ops.load();
    const auto stats_before = list.vault_stats();
    const std::uint64_t t0 = now_ns();
    spin_for_ns(static_cast<std::uint64_t>(seconds * 1e9));
    const double elapsed = static_cast<double>(now_ns() - t0) * 1e-9;
    const double tput = static_cast<double>(ops.load() - before) / elapsed;
    std::printf("%-28s %8.0f ops/s", phase, tput);
    const auto stats_after = list.vault_stats();
    std::uint64_t total = 0;
    std::uint64_t peak = 0;
    std::printf("   load share/vault:");
    for (std::size_t v = 0; v < stats_after.size(); ++v) {
      const std::uint64_t d =
          stats_after[v].requests - stats_before[v].requests;
      total += d;
      peak = std::max(peak, d);
    }
    for (std::size_t v = 0; v < stats_after.size(); ++v) {
      const std::uint64_t d =
          stats_after[v].requests - stats_before[v].requests;
      std::printf(" %.0f%%",
                  100.0 * static_cast<double>(d) /
                      static_cast<double>(total == 0 ? 1 : total));
    }
    std::printf("  (peak %.0f%%)\n",
                100.0 * static_cast<double>(peak) /
                    static_cast<double>(total == 0 ? 1 : total));
    return tput;
  };

  double before = 0.0;
  double after = 0.0;
  if (active) {
    // Closed loop: measure the hot phase with NO intervention (the
    // telemetry stream needs the hot windows on record), then hand the
    // list to the active policy and measure again once it has settled.
    before = measure("static partitions (skewed)", 1.0);
    core::AutoRebalancer::Options act_opts;
    act_opts.period = std::chrono::milliseconds(100);
    act_opts.imbalance_ratio = 1.5;
    act_opts.imbalance_exit = 1.3;
    act_opts.cooldown_periods = 1;
    act_opts.min_window_ops = 200;
    act_opts.adaptive_combining = true;
    core::AutoRebalancer rebalancer(list, act_opts);
    rebalancer.start();
    spin_for_ns(1'500'000'000);  // a dozen policy windows to act
    after = measure("active rebalancer (settled)", 1.0);
    rebalancer.stop();
    while (list.migration_active()) std::this_thread::yield();
    std::printf("active rebalancer: %zu migrations; partitions now:\n",
                rebalancer.migrations_triggered());
    for (const auto& e : list.partitions()) {
      std::printf("  [%lu, ...) -> vault %zu\n",
                  static_cast<unsigned long>(e.sentinel), e.vault);
    }
    json.note("active_migrations",
              static_cast<double>(rebalancer.migrations_triggered()));
    json.note("combined_batches",
              static_cast<double>(list.combined_batches()));
    json.note("combined_ops", static_cast<double>(list.combined_ops()));
  } else {
  // Observe-only rebalancer during the skewed phase: it consumes the
  // skip-list LoadMap's HotVaultReport and logs would-trigger decisions
  // (no migration — the manual quartile split below stays the ablation's
  // controlled variable). Its would_trigger count is the telemetry-plane
  // acceptance signal: under theta = 0.99 the hot vault must exceed the
  // imbalance threshold.
  core::AutoRebalancer::Options obs_opts;
  obs_opts.observe_only = true;
  obs_opts.period = std::chrono::milliseconds(100);
  core::AutoRebalancer observer(list, obs_opts);
  observer.start();

  before = measure("static partitions (skewed)", 1.0);

  observer.stop();
  const auto hot_report = observer.last_report();
  std::printf("observe-only rebalancer: %zu would-trigger decisions; "
              "last report: %s\n",
              observer.would_trigger_count(), hot_report.summary().c_str());
  json.note("would_trigger", static_cast<double>(observer.would_trigger_count()));
  json.note("observed_imbalance_ratio", hot_report.imbalance_ratio);

  // Pick split keys at the workload's empirical quartiles — the policy an
  // operator (or an automatic rebalancer watching vault_stats()) would use
  // — and peel them off the hot partition live.
  std::vector<std::uint64_t> splits;
  {
    Xoshiro256 rng(7);
    ZipfGenerator zipf(kKeyMax, 0.99);
    std::vector<std::uint64_t> sample(100000);
    for (auto& s : sample) s = zipf.next(rng) + 1;
    std::sort(sample.begin(), sample.end());
    for (std::size_t q = 1; q < kVaults; ++q) {
      std::uint64_t split = sample[q * sample.size() / kVaults];
      const std::uint64_t prev = splits.empty() ? 1 : splits.back();
      if (split <= prev) split = prev + 1;
      splits.push_back(split);
    }
  }
  for (std::size_t v = 1; v < kVaults; ++v) {
    while (!list.migrate(splits[v - 1], v)) std::this_thread::yield();
    while (list.migration_active()) std::this_thread::yield();
  }
  std::printf("migrated quartile ranges (splits at %lu, %lu, %lu); "
              "partitions now:\n",
              static_cast<unsigned long>(splits[0]),
              static_cast<unsigned long>(splits[1]),
              static_cast<unsigned long>(splits[2]));
  for (const auto& e : list.partitions()) {
    std::printf("  [%lu, ...) -> vault %zu\n",
                static_cast<unsigned long>(e.sentinel), e.vault);
  }

  after = measure("after rebalancing", 1.0);
  }

  stop.store(true);
  for (auto& t : cpus) t.join();
  system.stop();

  json.record("static_skewed", {{"vaults", std::to_string(kVaults)}}, before);
  json.record("after_rebalance", {{"vaults", std::to_string(kVaults)}}, after);
  json.note("rebalance_gain", after / before);
  std::printf("\nthroughput change: %.2fx (host has %d worker threads; on a "
              "many-core host the spread grows with the number of vaults)\n",
              after / before, kCpuThreads);
  return 0;
}
