// Native (real-thread) throughput of every real structure in the library,
// at 1..hardware_threads() CPU worker threads.
//
// This is the paper's Figure 2 / Figure 4 methodology run on THIS host:
// the paper used a 28-hyperthread Xeon; this container exposes very few
// cores, so the scaling portion of those figures lives in the simulator
// benches (fig2_linked_lists, fig4_skiplists). What this binary shows
// natively is the leg the paper's argument stands on: flat-combining-style
// single-executor structures do not scale with threads, while fine-grained
// and lock-free structures do — plus the real PIM emulation running with
// injected Section 3 latencies.
#include <cstdio>
#include <cstring>
#include <functional>
#include <thread>
#include <vector>

#include "baselines/fc_structures.hpp"
#include "baselines/faa_queue.hpp"
#include "baselines/hoh_list.hpp"
#include "baselines/lazy_list.hpp"
#include "baselines/lockfree_skiplist.hpp"
#include "baselines/ms_queue.hpp"
#include "bench/bench_util.hpp"
#include "common/barrier.hpp"
#include "common/rng.hpp"
#include "common/thread_utils.hpp"
#include "common/timing.hpp"
#include "core/pim_fifo_queue.hpp"
#include "core/pim_linked_list.hpp"
#include "core/pim_skiplist.hpp"

namespace {

using namespace pimds;
using namespace pimds::bench;

constexpr double kSeconds = 0.4;

/// Run `op(thread_id, rng)` from `threads` workers for kSeconds; return
/// aggregate ops/s.
double measure(std::size_t threads,
               const std::function<void(int, Xoshiro256&)>& op) {
  SpinBarrier barrier(threads + 1);
  std::atomic<bool> stop{false};
  std::vector<std::uint64_t> counts(threads, 0);
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      pin_to_cpu(t);
      Xoshiro256 rng(0xbe5c * (t + 1));
      barrier.arrive_and_wait();
      std::uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        op(static_cast<int>(t), rng);
        ++n;
      }
      counts[t] = n;
    });
  }
  barrier.arrive_and_wait();
  const std::uint64_t t0 = now_ns();
  spin_for_ns(static_cast<std::uint64_t>(kSeconds * 1e9));
  stop.store(true);
  const double elapsed = static_cast<double>(now_ns() - t0) * 1e-9;
  for (auto& w : workers) w.join();
  std::uint64_t total = 0;
  for (auto c : counts) total += c;
  return static_cast<double>(total) / elapsed;
}

template <typename Set>
void prefill(Set& set, std::size_t n, std::uint64_t range) {
  Xoshiro256 rng(1);
  std::size_t added = 0;
  while (added < n) added += set.add(rng.next_in(1, range));
}

template <typename Set>
std::function<void(int, Xoshiro256&)> set_op(Set& set, std::uint64_t range) {
  return [&set, range](int, Xoshiro256& rng) {
    const std::uint64_t key = rng.next_in(1, range);
    switch (rng.next_below(3)) {
      case 0: set.add(key); break;
      case 1: set.remove(key); break;
      default: set.contains(key);
    }
  };
}

}  // namespace

int main(int argc, char** argv) {
  JsonReporter json(argc, argv, "native_structures");
  // --reclaim=ebr|hp selects the memory-reclamation policy for every
  // lock-free structure in the run (default: ebr).
  ReclaimPolicy reclaim = ReclaimPolicy::kEbr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--reclaim=", 10) == 0) {
      if (auto p = parse_reclaim_policy(argv[i] + 10)) {
        reclaim = *p;
      } else {
        std::fprintf(stderr, "unknown --reclaim value '%s' (want ebr|hp)\n",
                     argv[i] + 10);
        return 2;
      }
    }
  }
  const std::size_t max_threads = hardware_threads();
  std::printf("host: %zu hardware threads (the paper used 28; see the\n"
              "simulator benches for full-scale sweeps)\n",
              max_threads);
  std::printf("reclamation policy for lock-free structures: %s\n",
              to_string(reclaim));

  banner("Native lists (key range 800, prefilled 400)");
  {
    Table table({"threads", "hand-over-hand", "lazy", "FC", "FC+comb"}, 16);
    table.print_header();
    for (std::size_t p = 1; p <= max_threads; p *= 2) {
      baselines::HohList hoh;
      prefill(hoh, 400, 800);
      baselines::LazyList lazy(reclaim);
      prefill(lazy, 400, 800);
      baselines::FcLinkedList fc_plain(false);
      prefill(fc_plain, 400, 800);
      baselines::FcLinkedList fc_comb(true);
      prefill(fc_comb, 400, 800);
      const double hoh_t = measure(p, set_op(hoh, 800));
      const double lazy_t = measure(p, set_op(lazy, 800));
      const double fc_comb_t = measure(p, set_op(fc_comb, 800));
      table.print_row({std::to_string(p), mops(hoh_t), mops(lazy_t),
                       mops(measure(p, set_op(fc_plain, 800))),
                       mops(fc_comb_t)});
      const JsonReporter::Params params{{"threads", std::to_string(p)}};
      json.record("hoh_list_p" + std::to_string(p), params, hoh_t);
      json.record("lazy_list_p" + std::to_string(p),
                  {{"threads", std::to_string(p)},
                   {"reclaim", to_string(reclaim)}},
                  lazy_t);
      json.record("fc_comb_list_p" + std::to_string(p), params, fc_comb_t);
    }
  }

  banner("Native skip-lists (key range 1<<16, prefilled 1<<15)");
  {
    Table table({"threads", "lock-free", "FC k=1", "FC k=4"}, 16);
    table.print_header();
    for (std::size_t p = 1; p <= max_threads; p *= 2) {
      baselines::LockFreeSkipList lf(reclaim);
      prefill(lf, 1 << 15, 1 << 16);
      baselines::FcSkipList fc1(1 << 16, 1);
      prefill(fc1, 1 << 15, 1 << 16);
      baselines::FcSkipList fc4(1 << 16, 4);
      prefill(fc4, 1 << 15, 1 << 16);
      const double lf_t = measure(p, set_op(lf, 1 << 16));
      table.print_row({std::to_string(p), mops(lf_t),
                       mops(measure(p, set_op(fc1, 1 << 16))),
                       mops(measure(p, set_op(fc4, 1 << 16)))});
      json.record("lockfree_skiplist_p" + std::to_string(p),
                  {{"threads", std::to_string(p)},
                   {"reclaim", to_string(reclaim)}},
                  lf_t);
    }
  }

  banner("Native queues (prefilled 1<<16; alternating enq/deq per thread)");
  {
    Table table({"threads", "Michael-Scott", "F&A", "FC"}, 16);
    table.print_header();
    for (std::size_t p = 1; p <= max_threads; p *= 2) {
      const auto queue_op = [](auto& q) {
        return [&q](int, Xoshiro256& rng) {
          if (rng.next_bool(0.5)) {
            q.enqueue(rng.next() >> 2);
          } else {
            q.dequeue();
          }
        };
      };
      baselines::MsQueue ms(reclaim);
      for (int i = 0; i < (1 << 16); ++i) ms.enqueue(i);
      baselines::FaaQueue faa(reclaim);
      for (int i = 0; i < (1 << 16); ++i) faa.enqueue(i);
      baselines::FcQueue fc;
      for (int i = 0; i < (1 << 16); ++i) fc.enqueue(i);
      const double ms_t = measure(p, queue_op(ms));
      const double faa_t = measure(p, queue_op(faa));
      table.print_row({std::to_string(p), mops(ms_t), mops(faa_t),
                       mops(measure(p, queue_op(fc)))});
      const JsonReporter::Params qparams{{"threads", std::to_string(p)},
                                         {"reclaim", to_string(reclaim)}};
      json.record("ms_queue_p" + std::to_string(p), qparams, ms_t);
      json.record("faa_queue_p" + std::to_string(p), qparams, faa_t);
    }
  }

  banner("PIM emulation with injected Section 3 latencies (2 CPU threads)");
  {
    // Real PimSystem, latency injection ON: every vault access costs Lpim,
    // every message leg Lmessage, mirroring the model on real threads.
    runtime::PimSystem::Config config;
    config.num_vaults = 2;
    config.inject_latency = true;
    config.params.pim_ns = 2000.0;  // scaled up so injection >> overheads
    {
      runtime::PimSystem system(config);
      core::PimLinkedList list(system, {0, true, 64});
      system.start();
      prefill(list, 100, 200);
      const double tput = measure(2, set_op(list, 200));
      system.stop();
      json.record("pim_linked_list_combining", {{"threads", "2"}}, tput);
      std::printf("PIM linked-list (combining):   %s Mops/s "
                  "(max batch observed: %zu)\n",
                  mops(tput).c_str(), list.max_observed_batch());
    }
    {
      runtime::PimSystem system(config);
      core::PimFifoQueue queue(system, {1024, true});
      system.start();
      for (int i = 0; i < 4096; ++i) queue.enqueue(i);
      const double tput = measure(2, [&](int t, Xoshiro256&) {
        if (t % 2 == 0) {
          queue.enqueue(1);
        } else {
          queue.dequeue();
        }
      });
      system.stop();
      json.record("pim_fifo_queue", {{"threads", "2"}}, tput);
      std::printf("PIM FIFO queue:                %s Mops/s "
                  "(segments created: %lu, rejections: %lu)\n",
                  mops(tput).c_str(),
                  static_cast<unsigned long>(queue.segments_created()),
                  static_cast<unsigned long>(queue.rejections()));
    }
  }
  return 0;
}
