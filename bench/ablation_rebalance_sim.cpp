// Ablation A5b (DESIGN.md): Section 4.2.1 rebalancing at full scale, in the
// deterministic simulator (the real-thread twin is ablation_rebalance).
//
// 16 simulated CPUs drive a Zipf workload at the PIM skip-list; at t = T/3
// an online rebalancer splits the workload's quartile ranges off the hot
// vault with the paper's non-blocking migration protocol. Throughput is
// measured before ([0, T/3)) and after ([2T/3, T)) the migrations.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "sim/ds/skiplists.hpp"

int main(int argc, char** argv) {
  using namespace pimds;
  using namespace pimds::bench;

  JsonReporter json(argc, argv, "ablation_rebalance_sim");
  banner("Ablation A5b: skip-list rebalancing under Zipf skew (simulator)");
  Table table({"theta", "k", "before", "after", "gain", "migrated",
               "rej/fwd/def", "consistent"},
              13);
  table.print_header();
  for (double theta : {0.6, 0.9, 0.99}) {
    for (std::size_t k : {4, 8}) {
      sim::RebalanceConfig cfg;
      cfg.zipf_theta = theta;
      cfg.partitions = k;
      cfg.num_cpus = 4 * k;
      const auto r = sim::run_pim_skiplist_rebalance(cfg);
      char th[16];
      std::snprintf(th, sizeof(th), "%.2f", theta);
      char flow[32];
      std::snprintf(flow, sizeof(flow), "%lu/%lu/%lu",
                    static_cast<unsigned long>(r.rejections),
                    static_cast<unsigned long>(r.forwarded),
                    static_cast<unsigned long>(r.deferred));
      table.print_row({th, std::to_string(k), mops(r.before.ops_per_sec()),
                       mops(r.after.ops_per_sec()),
                       ratio(r.after.ops_per_sec(), r.before.ops_per_sec()),
                       std::to_string(r.migrated_keys), flow,
                       r.size_consistent ? "yes" : "NO"});
      const JsonReporter::Params params{{"theta", th},
                                        {"partitions", std::to_string(k)}};
      json.record(std::string("before_theta") + th + "_k" + std::to_string(k),
                  params, r.before.ops_per_sec());
      json.record(std::string("after_theta") + th + "_k" + std::to_string(k),
                  params, r.after.ops_per_sec());
    }
  }

  // Gated scenario (perf_gate.py: notes_min): ACTIVE LoadMap policy vs two
  // controls on one deterministic seed. The acceptance bar is the issue's:
  // under theta = 0.99 the active policy must cut the windowed peak vault
  // imbalance of the run's final third by >= 2x against observe-only
  // (no intervention), while keeping throughput within 5% of the
  // uniform-key baseline. Doc-level notes carry both numbers to the gate.
  {
    std::printf("\ngated: active LoadMap policy, theta=0.99 k=4 seed=1\n");
    const sim::Time duration = 90'000'000;
    const auto gated_base = [&] {
      sim::RebalanceConfig cfg;
      cfg.seed = 1;
      cfg.num_cpus = 16;
      cfg.partitions = 4;
      cfg.key_range = 1 << 16;
      cfg.initial_size = 1 << 15;
      cfg.zipf_theta = 0.99;
      cfg.duration_ns = duration;
      cfg.policy_period_ns = 1'000'000;
      return cfg;
    };
    sim::RebalanceConfig observe = gated_base();
    observe.rebalance = false;  // skew, no intervention
    const auto r_obs = sim::run_pim_skiplist_rebalance(observe);
    sim::RebalanceConfig uniform = gated_base();
    uniform.rebalance = false;
    uniform.zipf_theta = 0.0;  // no skew: the throughput yardstick
    const auto r_uni = sim::run_pim_skiplist_rebalance(uniform);
    sim::RebalanceConfig active = gated_base();
    active.policy = sim::RebalancePolicy::kActiveLoadMap;
    active.imbalance_enter = 1.2;
    active.cooldown_periods = 1;
    const auto r_act = sim::run_pim_skiplist_rebalance(active);

    // Peak windowed imbalance over the final third (layout has settled).
    const double peak_obs =
        r_obs.peak_imbalance(2 * duration / 3, duration, 200);
    const double peak_act =
        r_act.peak_imbalance(2 * duration / 3, duration, 200);
    const double cut = peak_act > 0.0 ? peak_obs / peak_act : 0.0;
    const double tput_ratio =
        r_uni.after.total_ops > 0
            ? static_cast<double>(r_act.after.total_ops) /
                  static_cast<double>(r_uni.after.total_ops)
            : 0.0;
    std::printf(
        "  peak imbalance (final third): observe-only %.2f, active %.2f "
        "-> cut %.2fx\n"
        "  throughput (final third): active/uniform = %.3f, "
        "%llu migrations (%llu late), consistent=%s\n",
        peak_obs, peak_act, cut, tput_ratio,
        static_cast<unsigned long long>(r_act.migrations),
        static_cast<unsigned long long>(r_act.migrations_late),
        r_act.size_consistent ? "yes" : "NO");
    const JsonReporter::Params gp{{"theta", "0.99"}, {"partitions", "4"}};
    json.record("gated_observe_theta0.99_k4", gp, r_obs.after.ops_per_sec());
    json.record("gated_uniform_theta0.00_k4", gp, r_uni.after.ops_per_sec());
    json.record("gated_active_theta0.99_k4", gp, r_act.after.ops_per_sec());
    json.note("imbalance_cut", cut);
    json.note("active_vs_uniform_tput", tput_ratio);
    json.note("active_migrations", static_cast<double>(r_act.migrations));
    json.note("active_migrations_late",
              static_cast<double>(r_act.migrations_late));
    json.note("active_size_consistent",
              r_act.size_consistent ? 1.0 : 0.0);
  }

  // Control: the same skewed runs without rebalancing.
  std::printf("\ncontrols (no rebalancing):\n");
  for (double theta : {0.6, 0.9, 0.99}) {
    sim::RebalanceConfig cfg;
    cfg.zipf_theta = theta;
    cfg.rebalance = false;
    const auto r = sim::run_pim_skiplist_rebalance(cfg);
    std::printf("  theta=%.2f k=4: before %s after %s Mops/s (flat)\n",
                theta, mops(r.before.ops_per_sec()).c_str(),
                mops(r.after.ops_per_sec()).c_str());
  }

  std::printf(
      "\nReading: static partitions pin the Zipf head on one vault; live\n"
      "quartile migrations (source keeps serving, forwarding and deferring\n"
      "exactly per Section 4.2.1) recover multi-vault parallelism. The\n"
      "'consistent' column checks no key was lost or duplicated.\n");
  return 0;
}
