// Ablation A5b (DESIGN.md): Section 4.2.1 rebalancing at full scale, in the
// deterministic simulator (the real-thread twin is ablation_rebalance).
//
// 16 simulated CPUs drive a Zipf workload at the PIM skip-list; at t = T/3
// an online rebalancer splits the workload's quartile ranges off the hot
// vault with the paper's non-blocking migration protocol. Throughput is
// measured before ([0, T/3)) and after ([2T/3, T)) the migrations.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "sim/ds/skiplists.hpp"

int main(int argc, char** argv) {
  using namespace pimds;
  using namespace pimds::bench;

  JsonReporter json(argc, argv, "ablation_rebalance_sim");
  banner("Ablation A5b: skip-list rebalancing under Zipf skew (simulator)");
  Table table({"theta", "k", "before", "after", "gain", "migrated",
               "rej/fwd/def", "consistent"},
              13);
  table.print_header();
  for (double theta : {0.6, 0.9, 0.99}) {
    for (std::size_t k : {4, 8}) {
      sim::RebalanceConfig cfg;
      cfg.zipf_theta = theta;
      cfg.partitions = k;
      cfg.num_cpus = 4 * k;
      const auto r = sim::run_pim_skiplist_rebalance(cfg);
      char th[16];
      std::snprintf(th, sizeof(th), "%.2f", theta);
      char flow[32];
      std::snprintf(flow, sizeof(flow), "%lu/%lu/%lu",
                    static_cast<unsigned long>(r.rejections),
                    static_cast<unsigned long>(r.forwarded),
                    static_cast<unsigned long>(r.deferred));
      table.print_row({th, std::to_string(k), mops(r.before.ops_per_sec()),
                       mops(r.after.ops_per_sec()),
                       ratio(r.after.ops_per_sec(), r.before.ops_per_sec()),
                       std::to_string(r.migrated_keys), flow,
                       r.size_consistent ? "yes" : "NO"});
      const JsonReporter::Params params{{"theta", th},
                                        {"partitions", std::to_string(k)}};
      json.record(std::string("before_theta") + th + "_k" + std::to_string(k),
                  params, r.before.ops_per_sec());
      json.record(std::string("after_theta") + th + "_k" + std::to_string(k),
                  params, r.after.ops_per_sec());
    }
  }

  // Control: the same skewed runs without rebalancing.
  std::printf("\ncontrols (no rebalancing):\n");
  for (double theta : {0.6, 0.9, 0.99}) {
    sim::RebalanceConfig cfg;
    cfg.zipf_theta = theta;
    cfg.rebalance = false;
    const auto r = sim::run_pim_skiplist_rebalance(cfg);
    std::printf("  theta=%.2f k=4: before %s after %s Mops/s (flat)\n",
                theta, mops(r.before.ops_per_sec()).c_str(),
                mops(r.after.ops_per_sec()).c_str());
  }

  std::printf(
      "\nReading: static partitions pin the Zipf head on one vault; live\n"
      "quartile migrations (source keeps serving, forwarding and deferring\n"
      "exactly per Section 4.2.1) recover multi-vault parallelism. The\n"
      "'consistent' column checks no key was lost or duplicated.\n");
  return 0;
}
