// Reproduces Figure 4: skip-list throughput vs. number of threads for the
// lock-free skip-list and the flat-combining skip-list with 1/4/8/16
// partitions, plus the PIM-managed skip-list (both the paper's 3x-FC proxy
// estimate and the directly simulated structure with 8 and 16 vaults).
//
// `--skew <theta>` appends one Zipf-skewed PIM k=16 run at the top of the
// sweep (telemetry scenario; flag-gated so the default output and the
// committed perf-gate baselines stay bit-identical).
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench/bench_util.hpp"
#include "model/skiplist_model.hpp"
#include "sim/ds/skiplists.hpp"

int main(int argc, char** argv) {
  using namespace pimds;
  using namespace pimds::bench;

  double skew_theta = 0.0;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--skew") == 0) {
      skew_theta = std::strtod(argv[i + 1], nullptr);
    }
  }

  JsonReporter json(argc, argv, "fig4_skiplists");
  banner("Figure 4: skip-list throughput vs threads (simulator)");
  std::printf("N = 16384 keys initially, uniform ops, 30%% add / 30%% "
              "remove\n\n");

  Table table({"threads", "lock-free", "FC k=1", "FC k=4", "FC k=8",
               "FC k=16", "PIM k=8", "PIM k=16", "PIMest16(3xFC)"},
              13);
  table.print_header();

  double last_lf = 0.0, last_fc1 = 0.0, last_fc16 = 0.0;
  double last_pim8 = 0.0, last_pim16 = 0.0;
  for (std::size_t p : {1, 2, 4, 8, 12, 16, 20, 24, 28}) {
    sim::SkipListConfig cfg;
    cfg.num_cpus = p;
    cfg.key_range = 1 << 15;
    cfg.initial_size = 1 << 14;
    cfg.duration_ns = 15'000'000;
    const double lf = sim::run_lockfree_skiplist(cfg).ops_per_sec();
    const double fc1 = sim::run_fc_skiplist(cfg, 1).ops_per_sec();
    const double fc4 = sim::run_fc_skiplist(cfg, 4).ops_per_sec();
    const double fc8 = sim::run_fc_skiplist(cfg, 8).ops_per_sec();
    const double fc16 = sim::run_fc_skiplist(cfg, 16).ops_per_sec();
    const double pim8 = sim::run_pim_skiplist(cfg, 8).ops_per_sec();
    const double pim16 = sim::run_pim_skiplist(cfg, 16).ops_per_sec();
    table.print_row({std::to_string(p), mops(lf), mops(fc1), mops(fc4),
                     mops(fc8), mops(fc16), mops(pim8), mops(pim16),
                     mops(cfg.params.r1 * fc16)});
    const JsonReporter::Params params{{"threads", std::to_string(p)}};
    json.record("lockfree_p" + std::to_string(p), params, lf);
    json.record("fc1_p" + std::to_string(p), params, fc1);
    json.record("fc16_p" + std::to_string(p), params, fc16);
    json.record("pim8_p" + std::to_string(p), params, pim8);
    json.record("pim16_p" + std::to_string(p), params, pim16);
    last_lf = lf;
    last_fc1 = fc1;
    last_fc16 = fc16;
    last_pim8 = pim8;
    last_pim16 = pim16;
  }

  // Model conformance at the top of the sweep (p = 28), against the
  // Section 5.3 bounds with beta estimated from the initial size.
  {
    const LatencyParams lp = sim::SkipListConfig{}.params;
    const double beta = model::estimate_beta(1 << 14);
    json.conformance("lockfree_skiplist.p28",
                     model::lock_free_skiplist(lp, beta, 28), last_lf);
    json.conformance("fc_skiplist.k1", model::fc_skiplist(lp, beta), last_fc1);
    json.conformance("fc_skiplist.k16",
                     model::fc_skiplist_partitioned(lp, beta, 16), last_fc16);
    json.conformance("pim_skiplist.k8",
                     model::pim_skiplist_partitioned(lp, beta, 8), last_pim8);
    json.conformance("pim_skiplist.k16",
                     model::pim_skiplist_partitioned(lp, beta, 16), last_pim16);
  }

  if (skew_theta > 0.0) {
    sim::SkipListConfig cfg;
    cfg.num_cpus = 16;
    cfg.key_range = 1 << 15;
    cfg.initial_size = 1 << 14;
    cfg.duration_ns = 15'000'000;
    cfg.zipf_theta = skew_theta;
    const double tput = sim::run_pim_skiplist(cfg, 16).ops_per_sec();
    std::printf("\nPIM k=16, 16 threads, Zipf(%.2f): %s Mops/s (uniform: "
                "%s)\n",
                skew_theta, mops(tput).c_str(), mops(last_pim16).c_str());
    json.record("pim16_p16_zipf",
                {{"threads", "16"},
                 {"zipf_theta", std::to_string(skew_theta)}},
                tput);
  }

  std::printf(
      "\nExpected shape (paper Fig. 4): lock-free scales linearly; FC\n"
      "improves with partition count; PIM with 8 or 16 partitions stays\n"
      "above the lock-free skip-list across the thread sweep (k > p/r1).\n");
  return 0;
}
