// Open-loop tail-latency sweep over the runtime PIM structures
// (observability plane, part 4).
//
// Closed-loop benches measure throughput honestly but latency dishonestly:
// each worker only issues once its previous op completes, so a stall
// swallows exactly the samples that would have shown it (coordinated
// omission). This driver fixes the arrival process instead: dedicated
// injector threads issue on a schedule (Poisson or deterministic) at a
// configured fraction of the structure's own measured closed-loop capacity,
// and every op is charged from its INTENDED start to completion
// (obs::LatencyRecorder). A saturated server then yields an exploding
// backlog and growing percentiles instead of a flat, self-censored table.
//
// The queue sweep doubles as a model-conformance experiment. With a single
// segment (segment_threshold = 2^60), CPU-side combining off (one crossbar
// message per op) and enqueue combining off (constant service per op), one
// vault core is literally an M/D/1 server: Poisson arrivals, deterministic
// service s ~= Lpim per message. src/model/latency_model.hpp supplies the
// closed-form sojourn prediction; the constant client-side overhead (two
// Lmessage flight legs + scheduling) is calibrated once at the LOWEST rate
// point, and predicted-vs-measured mean and p99 land in the JSON's
// conformance.latency rows. Below the knee (rho <= 0.7) the mean should
// track M/D/1 within the gate tolerance; above it the model predicts an
// unstable queue and the measured backlog/lateness must grow monotonically
// — that, not a percentile band, is the sanity check past saturation.
//
// Scale note: Lpim is inflated to 10 us (like ablation_batch_drain) so the
// injected latencies dominate host scheduler noise and a 2-vault system
// has a ~100 Kops/s server — rates the injector clock (wait_until_ns) can
// hit within a microsecond.
//
// Flags (besides the common --json/--trace/--telemetry set):
//   --duration-ms <n>   per rate point measurement window   (default 400)
//   --capacity-ms <n>   closed-loop capacity leg            (default 300)
//   --injectors <n>     open-loop injector threads          (default 16)
//   --pim-ns <n>        inflated Lpim scale                 (default 10000)
//   --structure <s>     queue | skiplist | both             (default both)
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/thread_utils.hpp"
#include "common/timing.hpp"
#include "core/pim_fifo_queue.hpp"
#include "core/pim_skiplist.hpp"
#include "model/latency_model.hpp"
#include "runtime/system.hpp"
#include "sim/ds/queues.hpp"

namespace {

using namespace pimds;
using namespace pimds::bench;

enum class Sched { kClosedLoop, kDeterministic, kPoisson };

const char* sched_name(Sched s) {
  switch (s) {
    case Sched::kClosedLoop: return "closed";
    case Sched::kDeterministic: return "deterministic";
    case Sched::kPoisson: return "poisson";
  }
  return "?";
}

struct LegConfig {
  Sched sched = Sched::kPoisson;
  double offered_ops_per_sec = 0.0;  ///< aggregate; unused for closed loop
  std::uint64_t duration_ns = 400'000'000;
  std::size_t injectors = 16;
  double pim_ns = 10'000.0;
  std::uint64_t seed = 0x5eedULL;
};

struct LegStats {
  double wall_s = 0.0;
  std::uint64_t ops = 0;
  double completed_ops_per_sec = 0.0;
  /// How far the injector schedule ran past its nominal end: the last
  /// injector's finish minus (t0 + duration). Zero when the system kept up.
  double backlog_ns = 0.0;
  double lambda_per_ns = 0.0;  ///< busiest vault: served messages per ns
  double service_ns = 0.0;     ///< busiest vault: busy_ns per message
  double rho = 0.0;            ///< lambda * s at the busiest vault
  obs::LatencyRecorder::Summary lat;
  std::string phase_p99;  ///< per-phase p99 attribution (JSON object)
};

/// Run one measured leg: `injectors` threads driving `op` on the configured
/// arrival schedule against whatever structure the caller set up. Resets
/// the metrics registry at entry so phase/vault counters describe only this
/// leg. The caller's system must already be started.
LegStats run_leg(const LegConfig& leg, const char* family,
                 const std::function<void(std::size_t, Xoshiro256&)>& op) {
  obs::Registry::instance().reset();
  obs::LatencyRecorder recorder(family);
  const double period_ns =
      leg.sched == Sched::kClosedLoop
          ? 0.0
          : 1e9 * static_cast<double>(leg.injectors) / leg.offered_ops_per_sec;
  std::atomic<std::uint64_t> total_ops{0};
  std::atomic<std::uint64_t> last_finish{0};
  // Epoch far enough out that every injector is parked on it before the
  // first intended slot; absolute deadlines keep the schedule independent
  // of how long any op takes.
  const std::uint64_t t0 = now_ns() + 2'000'000;
  std::vector<std::thread> threads;
  threads.reserve(leg.injectors);
  for (std::size_t i = 0; i < leg.injectors; ++i) {
    threads.emplace_back([&, i] {
      Xoshiro256 rng(leg.seed + 0x9E3779B97F4A7C15ULL * (i + 1));
      std::uint64_t ops = 0;
      if (leg.sched == Sched::kClosedLoop) {
        wait_until_ns(t0);
        const std::uint64_t end = t0 + leg.duration_ns;
        while (now_ns() < end) {
          op(i, rng);
          ++ops;
        }
      } else {
        // Deterministic: evenly staggered fixed periods. Poisson: uniform
        // phase then exponential gaps — superposing independent Poisson
        // injectors is Poisson at the aggregate rate.
        double rel = leg.sched == Sched::kDeterministic
                         ? period_ns * (static_cast<double>(i) + 0.5) /
                               static_cast<double>(leg.injectors)
                         : rng.next_double() * period_ns;
        while (rel < static_cast<double>(leg.duration_ns)) {
          const std::uint64_t intended = t0 + static_cast<std::uint64_t>(rel);
          wait_until_ns(intended);
          const std::uint64_t start = now_ns();
          op(i, rng);
          recorder.record(intended, start, now_ns());
          ++ops;
          rel += leg.sched == Sched::kPoisson
                     ? -period_ns * std::log(1.0 - rng.next_double())
                     : period_ns;
        }
      }
      total_ops.fetch_add(ops, std::memory_order_relaxed);
      std::uint64_t fin = now_ns();
      std::uint64_t cur = last_finish.load(std::memory_order_relaxed);
      while (fin > cur && !last_finish.compare_exchange_weak(
                              cur, fin, std::memory_order_relaxed)) {
      }
    });
  }
  for (auto& t : threads) t.join();

  LegStats s;
  s.ops = total_ops.load(std::memory_order_relaxed);
  const std::uint64_t wall_end = last_finish.load(std::memory_order_relaxed);
  s.wall_s = wall_end > t0 ? static_cast<double>(wall_end - t0) * 1e-9 : 0.0;
  s.completed_ops_per_sec =
      s.wall_s > 0.0 ? static_cast<double>(s.ops) / s.wall_s : 0.0;
  const std::uint64_t nominal_end = t0 + leg.duration_ns;
  s.backlog_ns = wall_end > nominal_end
                     ? static_cast<double>(wall_end - nominal_end)
                     : 0.0;
  // Busiest vault = the queueing server (the single-segment queue puts all
  // traffic on one vault; the skip list spreads it, so this is the hottest
  // partition).
  obs::Registry& reg = obs::Registry::instance();
  double best_msgs = 0.0;
  double best_busy = 0.0;
  for (int k = 0; k < 8; ++k) {
    const std::string prefix = "runtime.vault" + std::to_string(k);
    const double msgs =
        static_cast<double>(reg.counter(prefix + ".messages").value());
    if (msgs > best_msgs) {
      best_msgs = msgs;
      best_busy =
          static_cast<double>(reg.counter(prefix + ".busy_ns").value());
    }
  }
  if (best_msgs > 0.0 && s.wall_s > 0.0) {
    s.lambda_per_ns = best_msgs / (s.wall_s * 1e9);
    s.service_ns = best_busy / best_msgs;
    s.rho = s.lambda_per_ns * s.service_ns;
  }
  s.lat = recorder.summary();
  s.phase_p99 =
      obs::phase_tail_json(obs::phase_tail(obs::PhaseDomain::kRuntime, 0.99));
  return s;
}

runtime::PimSystem::Config system_config(double pim_ns) {
  runtime::PimSystem::Config cfg;
  cfg.num_vaults = 2;
  cfg.inject_latency = true;
  cfg.params = LatencyParams::paper_defaults();
  cfg.params.pim_ns = pim_ns;
  // The gather window parks the core waiting for imminently-due messages
  // BEFORE dispatch; that wait is not in busy_ns, so it would inflate
  // measured sojourn past anything M/D/1 can account for. 1 ns ~= off.
  cfg.drain_gather_window_ns = 1;
  cfg.pin_cores = hardware_threads() > cfg.num_vaults + 2;
  return cfg;
}

/// One queue rate point: fresh system + single-segment queue per leg so no
/// backlog leaks across points.
LegStats queue_leg(const LegConfig& leg) {
  runtime::PimSystem system(system_config(leg.pim_ns));
  core::PimFifoQueue::Options qopts;
  qopts.segment_threshold = std::uint64_t{1} << 60;  // single segment
  qopts.cpu_combining = false;     // one message per op: arrivals stay Poisson
  qopts.enqueue_combining = false;  // constant per-op service (the D in M/D/1)
  core::PimFifoQueue queue(system, qopts);
  system.start();
  for (std::uint64_t i = 0; i < 4096; ++i) queue.enqueue(i);  // deq never empty
  LegStats s =
      run_leg(leg, "openloop.queue", [&](std::size_t i, Xoshiro256& rng) {
        if ((i & 1) == 0) {
          queue.enqueue(rng.next());
        } else {
          (void)queue.dequeue();
        }
      });
  system.stop();
  return s;
}

LegStats skiplist_leg(const LegConfig& leg) {
  runtime::PimSystem system(system_config(leg.pim_ns));
  core::PimSkipList::Options sopts;
  sopts.key_max = std::uint64_t{1} << 16;
  core::PimSkipList list(system, sopts);
  system.start();
  Xoshiro256 pre(7);
  for (int i = 0; i < 8192; ++i) {
    list.add(1 + pre.next() % ((std::uint64_t{1} << 16) - 1));
  }
  LegStats s =
      run_leg(leg, "openloop.skiplist", [&](std::size_t i, Xoshiro256& rng) {
        const std::uint64_t key =
            1 + rng.next() % ((std::uint64_t{1} << 16) - 1);
        if ((i & 1) == 0) {
          (void)list.contains(key);
        } else if (rng.next() & 1) {
          (void)list.add(key);
        } else {
          (void)list.remove(key);
        }
      });
  system.stop();
  return s;
}

void add_field(std::string& out, const char* key, const std::string& value,
               bool quoted = false) {
  if (out.back() != '{') out += ", ";
  out += '"';
  out += key;
  out += "\": ";
  if (quoted) out += '"';
  out += value;
  if (quoted) out += '"';
}

void add_num(std::string& out, const char* key, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  add_field(out, key, buf);
}

/// The per-record "latency" object: full CO-free percentile ladder, the
/// closed-loop-equivalent service view, injector health (sched lag, late
/// share, backlog), raw model predictions, and per-phase p99 attribution.
std::string latency_json(Sched sched, double rate_frac, const LegStats& s,
                         bool gated) {
  std::string out = "{";
  add_field(out, "schedule", sched_name(sched), /*quoted=*/true);
  add_num(out, "rate_frac", rate_frac);
  add_num(out, "ops", static_cast<double>(s.lat.ops));
  add_num(out, "wall_s", s.wall_s);
  add_num(out, "rho", s.rho);
  add_num(out, "service_ns", s.service_ns);
  add_num(out, "mean_ns", s.lat.mean_ns);
  add_num(out, "p50_ns", s.lat.p50_ns);
  add_num(out, "p90_ns", s.lat.p90_ns);
  add_num(out, "p99_ns", s.lat.p99_ns);
  add_num(out, "p999_ns", s.lat.p999_ns);
  add_num(out, "max_ns", static_cast<double>(s.lat.max_ns));
  add_num(out, "service_mean_ns", s.lat.service_mean_ns);
  add_num(out, "service_p99_ns", s.lat.service_p99_ns);
  add_num(out, "sched_lag_p99_ns", s.lat.sched_lag_p99_ns);
  add_num(out, "late_share_pct", s.lat.late_share_pct());
  add_num(out, "backlog_ns", s.backlog_ns);
  add_field(out, "gated", gated ? "true" : "false");
  if (s.rho > 0.0 && s.service_ns > 0.0) {
    const model::LatencyPrediction md1 =
        model::mdl_sojourn(s.lambda_per_ns, s.service_ns);
    const model::LatencyPrediction mm1 =
        model::mm1_sojourn(s.lambda_per_ns, s.service_ns);
    add_field(out, "md1_stable", md1.stable ? "true" : "false");
    if (md1.stable) {
      add_num(out, "md1_mean_ns", md1.mean_ns);
      add_num(out, "md1_p99_ns", md1.p99_ns);
    }
    if (mm1.stable) add_num(out, "mm1_mean_ns", mm1.mean_ns);
  }
  add_field(out, "phase_p99", s.phase_p99.empty() ? "{}" : s.phase_p99);
  out += "}";
  return out;
}

struct SweepRow {
  double frac = 0.0;
  Sched sched = Sched::kPoisson;
  LegStats stats;
};

std::string frac_tag(double frac) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.2f", frac);
  return buf;
}

void print_row(const Table& table, const SweepRow& r) {
  char offered[32], done[32], rho[32], p50[32], p99[32], p999[32], mean[32],
      late[32], backlog[32];
  std::snprintf(offered, sizeof(offered), "%.1fK",
                r.stats.completed_ops_per_sec * 1e-3);
  std::snprintf(done, sizeof(done), "%llu",
                static_cast<unsigned long long>(r.stats.lat.ops));
  std::snprintf(rho, sizeof(rho), "%.2f", r.stats.rho);
  std::snprintf(p50, sizeof(p50), "%.0f", r.stats.lat.p50_ns * 1e-3);
  std::snprintf(p99, sizeof(p99), "%.0f", r.stats.lat.p99_ns * 1e-3);
  std::snprintf(p999, sizeof(p999), "%.0f", r.stats.lat.p999_ns * 1e-3);
  std::snprintf(mean, sizeof(mean), "%.0f", r.stats.lat.mean_ns * 1e-3);
  std::snprintf(late, sizeof(late), "%.1f%%", r.stats.lat.late_share_pct());
  std::snprintf(backlog, sizeof(backlog), "%.1f", r.stats.backlog_ns * 1e-6);
  table.print_row({frac_tag(r.frac), sched_name(r.sched), offered, done, rho,
                   p50, p99, p999, mean, late, backlog});
}

/// Sweep one structure: closed-loop capacity leg, then Poisson rate points
/// at `fracs` of capacity (+ one deterministic point for the queue). Emits
/// one record per point; for the queue also intercept-calibrated
/// conformance.latency rows against M/D/1.
void run_structure(JsonReporter& json, const char* structure,
                   const std::function<LegStats(const LegConfig&)>& leg_fn,
                   const LegConfig& base, std::uint64_t capacity_ns,
                   bool conformance) {
  banner((std::string("Open-loop latency sweep: ") + structure).c_str());

  LegConfig cap_leg = base;
  cap_leg.sched = Sched::kClosedLoop;
  cap_leg.duration_ns = capacity_ns;
  const LegStats cap = leg_fn(cap_leg);
  const double capacity = cap.completed_ops_per_sec;
  std::printf("closed-loop capacity: %.1f Kops/s (%zu injectors, "
              "Lpim = %.0f ns)\n\n",
              capacity * 1e-3, base.injectors, base.pim_ns);
  json.record(std::string(structure) + ".capacity",
              {{"structure", structure},
               {"schedule", "closed"},
               {"injectors", std::to_string(base.injectors)}},
              capacity);

  Table table({"rate", "schedule", "done/s", "ops", "rho", "p50us", "p99us",
               "p999us", "meanus", "late", "backlogms"},
              11);
  table.print_header();

  std::vector<SweepRow> rows;
  const double fracs[] = {0.2, 0.4, 0.6, 0.8, 0.9, 1.0, 1.1};
  for (const double frac : fracs) {
    LegConfig leg = base;
    leg.sched = Sched::kPoisson;
    leg.offered_ops_per_sec = frac * capacity;
    rows.push_back({frac, Sched::kPoisson, leg_fn(leg)});
    print_row(table, rows.back());
  }
  const bool is_queue = std::strcmp(structure, "queue") == 0;
  if (is_queue) {
    LegConfig leg = base;
    leg.sched = Sched::kDeterministic;
    leg.offered_ops_per_sec = 0.8 * capacity;
    rows.push_back({0.8, Sched::kDeterministic, leg_fn(leg)});
    print_row(table, rows.back());
  }

  // The knee: the last Poisson point the SYSTEM absorbed — completed rate
  // within 2% of offered AND the hot vault still in the M/D/1 regime
  // (rho <= 0.7). On a host with fewer cores than injectors the client
  // side saturates before the vault does; the delivery test catches that.
  double knee = 0.0;
  for (const SweepRow& r : rows) {
    if (r.sched != Sched::kPoisson || r.frac <= knee) continue;
    const double offered = r.frac * capacity;
    if (r.stats.completed_ops_per_sec >= 0.98 * offered &&
        r.stats.rho > 0.0 && r.stats.rho <= 0.7) {
      knee = r.frac;
    }
  }
  json.note(std::string(structure) + "_capacity_ops_per_sec", capacity);
  json.note(std::string(structure) + "_knee_rate_frac", knee);
  std::printf("\nknee (highest rate with rho <= 0.7): %.2fx capacity\n", knee);

  // Intercept calibration for conformance: the model predicts queueing
  // sojourn AT THE VAULT; the measured total also carries a constant
  // client-side overhead (two Lmessage flight legs, injector-to-core
  // scheduling). Fit that constant at the LOWEST rate point, where queueing
  // is negligible, then hold it fixed across the sweep — the model must
  // explain all GROWTH in mean and p99 on its own.
  double overhead_mean = 0.0, overhead_p99 = 0.0;
  bool calibrated = false;
  for (const SweepRow& r : rows) {
    if (r.sched != Sched::kPoisson) continue;
    // Gated points feed perf_gate.py's p99 band. Only the well-below-knee
    // queue points qualify: run-to-run p99 is stable there, while near
    // saturation host-scheduling noise swings the tail by 2x.
    const bool gated = is_queue && r.frac <= 0.65 && r.stats.rho > 0.0 &&
                       r.stats.rho <= 0.7;
    json.record_with_latency(
        std::string(structure) + ".rate" + frac_tag(r.frac),
        {{"structure", structure},
         {"schedule", sched_name(r.sched)},
         {"rate_frac", frac_tag(r.frac)},
         {"injectors", std::to_string(base.injectors)}},
        r.stats.completed_ops_per_sec,
        latency_json(r.sched, r.frac, r.stats, gated));
    if (!conformance || r.stats.rho <= 0.0 || r.stats.service_ns <= 0.0) {
      continue;
    }
    const model::LatencyPrediction md1 =
        model::mdl_sojourn(r.stats.lambda_per_ns, r.stats.service_ns);
    if (!md1.stable) continue;
    if (!calibrated) {
      overhead_mean = r.stats.lat.mean_ns - md1.mean_ns;
      overhead_p99 = r.stats.lat.p99_ns - md1.p99_ns;
      calibrated = true;
    }
    model::LatencyConformanceRow row;
    row.name = "openloop." + std::string(structure) + ".rate" +
               frac_tag(r.frac);
    row.rho = r.stats.rho;
    row.predicted_mean_ns = overhead_mean + md1.mean_ns;
    row.measured_mean_ns = r.stats.lat.mean_ns;
    row.predicted_p99_ns = overhead_p99 + md1.p99_ns;
    row.measured_p99_ns = r.stats.lat.p99_ns;
    json.conformance_latency(row);
  }
  // Deterministic row is recorded too (it is not conformance material: the
  // arrival process is D, not M).
  for (const SweepRow& r : rows) {
    if (r.sched != Sched::kDeterministic) continue;
    json.record_with_latency(
        std::string(structure) + ".det" + frac_tag(r.frac),
        {{"structure", structure},
         {"schedule", sched_name(r.sched)},
         {"rate_frac", frac_tag(r.frac)},
         {"injectors", std::to_string(base.injectors)}},
        r.stats.completed_ops_per_sec,
        latency_json(r.sched, r.frac, r.stats, /*gated=*/false));
  }
}

/// Deterministic M/D/1 validation in VIRTUAL time. The runtime sweep above
/// measures real threads on real silicon, so its divergence from the model
/// carries whatever the host scheduler adds (on a box with fewer cores than
/// injectors, a lot). This section removes the host entirely: the simulated
/// single-segment PIM queue (segment_threshold -> inf, combining off) is one
/// core serving every op at exactly Lpim — an M/D/1 server with Poisson
/// arrivals from the ArrivalPacer — and virtual time makes the measurement
/// exact and bit-identical across runs. These are the conformance.latency
/// rows perf_gate.py holds to the tight divergence bounds
/// ("openloop.sim.*"); the runtime rows ("openloop.queue.*") are reported
/// for the record but not divergence-gated.
void run_sim_conformance(JsonReporter& json) {
  banner("Simulator M/D/1 conformance (virtual time, single-segment queue)");
  const LatencyParams lp = LatencyParams::paper_defaults();
  const double s = lp.pim();
  std::printf(
      "one PIM core serves all ops, deterministic service Lpim = %.0f ns;\n"
      "48 Poisson actors; sojourn = 2 Lmessage + M/D/1 wait + service.\n"
      "Intercept (flights + injector lag) calibrated at the lowest rho.\n\n",
      s);
  Table table({"target_rho", "rho", "ops", "mean_ns", "pred_mean", "div%",
               "p99_ns", "pred_p99", "div%"},
              11);
  table.print_header();
  double overhead_mean = 0.0, overhead_p99 = 0.0;
  bool calibrated = false;
  for (const double target_rho : {0.2, 0.4, 0.6, 0.8}) {
    sim::QueueConfig cfg;
    cfg.enqueuers = 24;
    cfg.dequeuers = 24;
    cfg.duration_ns = 10'000'000;
    cfg.initial_nodes = 20'000;  // dequeues never observe empty
    cfg.arrival = sim::ArrivalSchedule::kPoisson;
    cfg.arrival_period_ns =
        static_cast<double>(cfg.enqueuers + cfg.dequeuers) * s / target_rho;
    std::vector<double> sink;
    cfg.latency_sink_ns = &sink;
    sim::PimQueueOptions opts;
    opts.segment_threshold = std::uint64_t{1} << 40;
    opts.enqueue_combining = false;
    const sim::PimQueueResult res = sim::run_pim_queue(cfg, opts);
    const double lambda_per_ns = static_cast<double>(res.run.total_ops) /
                                 static_cast<double>(cfg.duration_ns);
    const double rho = lambda_per_ns * s;
    const Summary m = Summary::of(std::move(sink));
    const model::LatencyPrediction md1 = model::mdl_sojourn(lambda_per_ns, s);
    const model::LatencyPrediction mm1 = model::mm1_sojourn(lambda_per_ns, s);
    if (!md1.stable) continue;
    if (!calibrated) {
      overhead_mean = m.mean - md1.mean_ns;
      overhead_p99 = m.p99 - md1.p99_ns;
      calibrated = true;
    }
    char tag[16];
    std::snprintf(tag, sizeof(tag), "%.1f", target_rho);
    model::LatencyConformanceRow row;
    row.name = std::string("openloop.sim.queue.rho") + tag;
    row.rho = rho;
    row.predicted_mean_ns = overhead_mean + md1.mean_ns;
    row.measured_mean_ns = m.mean;
    row.predicted_p99_ns = overhead_p99 + md1.p99_ns;
    row.measured_p99_ns = m.p99;
    json.conformance_latency(row);

    char c_rho[16], c_ops[24], c_mean[24], c_pm[24], c_dm[16], c_p99[24],
        c_pp[24], c_dp[16];
    std::snprintf(c_rho, sizeof(c_rho), "%.2f", rho);
    std::snprintf(c_ops, sizeof(c_ops), "%llu",
                  static_cast<unsigned long long>(res.run.total_ops));
    std::snprintf(c_mean, sizeof(c_mean), "%.0f", m.mean);
    std::snprintf(c_pm, sizeof(c_pm), "%.0f", row.predicted_mean_ns);
    std::snprintf(c_dm, sizeof(c_dm), "%+.1f%%", row.mean_divergence_pct());
    std::snprintf(c_p99, sizeof(c_p99), "%.0f", m.p99);
    std::snprintf(c_pp, sizeof(c_pp), "%.0f", row.predicted_p99_ns);
    std::snprintf(c_dp, sizeof(c_dp), "%+.1f%%", row.p99_divergence_pct());
    table.print_row(
        {tag, c_rho, c_ops, c_mean, c_pm, c_dm, c_p99, c_pp, c_dp});

    std::string lat = "{";
    add_field(lat, "schedule", "poisson", /*quoted=*/true);
    add_num(lat, "rate_frac", target_rho);
    add_num(lat, "ops", static_cast<double>(m.count));
    add_num(lat, "rho", rho);
    add_num(lat, "service_ns", s);
    add_num(lat, "mean_ns", m.mean);
    add_num(lat, "p50_ns", m.p50);
    add_num(lat, "p90_ns", m.p90);
    add_num(lat, "p99_ns", m.p99);
    add_num(lat, "p999_ns", m.p999);
    add_num(lat, "max_ns", m.max);
    add_num(lat, "md1_mean_ns", md1.mean_ns);
    add_num(lat, "md1_p99_ns", md1.p99_ns);
    if (mm1.stable) add_num(lat, "mm1_mean_ns", mm1.mean_ns);
    add_field(lat, "gated", "false");
    add_field(lat, "phase_p99", "{}");
    lat += "}";
    json.record_with_latency("sim.queue.rho" + std::string(tag),
                             {{"structure", "queue"},
                              {"schedule", "poisson"},
                              {"target_rho", tag},
                              {"domain", "sim"}},
                             res.run.ops_per_sec(), lat);
  }
  std::printf(
      "\n(virtual time: these rows are deterministic, so the divergence\n"
      "bounds in perf_gate.py hold exactly across hosts and runs)\n");
}

}  // namespace

int main(int argc, char** argv) {
  JsonReporter json(argc, argv, "openloop_latency");

  std::uint64_t duration_ms = 400;
  std::uint64_t capacity_ms = 300;
  std::size_t injectors = 16;
  double pim_ns = 10'000.0;
  std::string structure = "both";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--duration-ms" && i + 1 < argc) {
      duration_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--capacity-ms" && i + 1 < argc) {
      capacity_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--injectors" && i + 1 < argc) {
      injectors = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--pim-ns" && i + 1 < argc) {
      pim_ns = std::strtod(argv[++i], nullptr);
    } else if (arg == "--structure" && i + 1 < argc) {
      structure = argv[++i];
    }
  }

  banner("Open-loop tail latency: intended-start recording + M/D/1 gate");
  std::printf(
      "Open system: %zu injectors on a dedicated schedule (Poisson /\n"
      "deterministic), latency charged from INTENDED start to completion\n"
      "(coordinated-omission-free). Queue legs run single-segment with\n"
      "combining off so the hot vault is an M/D/1 server.\n",
      injectors);

  LegConfig base;
  base.duration_ns = duration_ms * 1'000'000;
  base.injectors = injectors;
  base.pim_ns = pim_ns;
  const std::uint64_t capacity_ns = capacity_ms * 1'000'000;

  if (structure == "both" || structure == "queue") {
    run_structure(json, "queue", queue_leg, base, capacity_ns,
                  /*conformance=*/true);
  }
  if (structure == "both" || structure == "skiplist") {
    run_structure(json, "skiplist", skiplist_leg, base, capacity_ns,
                  /*conformance=*/false);
  }
  run_sim_conformance(json);

  std::printf(
      "\nExpected shape: below the knee the CO-free mean tracks the\n"
      "intercept-calibrated M/D/1 sojourn and p50 < p99 < p999 separate\n"
      "cleanly; past rho ~= 1 the open-loop backlog and late share must\n"
      "grow monotonically (the closed-loop table could never show this —\n"
      "it would just issue slower).\n");
  return 0;
}
