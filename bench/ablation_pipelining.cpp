// Ablation A3 (DESIGN.md): the three design knobs of the PIM FIFO queue —
// response pipelining (Figure 6), segment threshold (incl. the
// single-segment "short queue" regime), and segment placement policy (the
// round-robin role-collision pathology vs the antipodal fix).
#include <cstdio>

#include "bench/bench_util.hpp"
#include "model/queue_model.hpp"
#include "sim/ds/queues.hpp"

int main(int argc, char** argv) {
  using namespace pimds;
  using namespace pimds::bench;
  using sim::PimQueueOptions;
  using sim::SegmentPlacement;

  JsonReporter json(argc, argv, "ablation_pipelining");

  sim::QueueConfig cfg;
  cfg.enqueuers = 12;
  cfg.dequeuers = 12;
  cfg.duration_ns = 15'000'000;
  const LatencyParams lp = cfg.params;

  banner("Ablation A3a: pipelining on/off (Figure 6)");
  {
    Table table({"pipelining", "sim Mops/s", "model Mops/s"}, 16);
    table.print_header();
    PimQueueOptions on;
    PimQueueOptions off;
    off.pipelining = false;
    const double t_on = sim::run_pim_queue(cfg, on).run.ops_per_sec();
    const double t_off = sim::run_pim_queue(cfg, off).run.ops_per_sec();
    table.print_row({"on", mops(t_on),
                     mops(2 * model::pim_queue_pipelined(lp))});
    table.print_row({"off", mops(t_off),
                     mops(2 * model::pim_queue_unpipelined(lp))});
    json.record("pipelining_on", {{"pipelining", "on"}}, t_on);
    json.record("pipelining_off", {{"pipelining", "off"}}, t_off);
  }

  banner("Ablation A3b: segment threshold sweep");
  {
    Table table({"threshold", "Mops/s", "segments", "rejections"}, 14);
    table.print_header();
    for (std::uint64_t threshold : {64ull, 256ull, 1024ull, 4096ull, 16384ull}) {
      PimQueueOptions opts;
      opts.segment_threshold = threshold;
      const auto r = sim::run_pim_queue(cfg, opts);
      table.print_row({std::to_string(threshold),
                       mops(r.run.ops_per_sec()),
                       std::to_string(r.segments_created),
                       std::to_string(r.rejections)});
      json.record("threshold_" + std::to_string(threshold),
                  {{"segment_threshold", std::to_string(threshold)}},
                  r.run.ops_per_sec());
    }
    PimQueueOptions single;
    single.num_vaults = 1;
    single.segment_threshold = ~std::uint64_t{0};
    const auto r = sim::run_pim_queue(cfg, single);
    table.print_row({"1-segment", mops(r.run.ops_per_sec()), "0",
                     std::to_string(r.rejections)});
    std::printf("(paper: the single-segment 'short queue' regime halves "
                "throughput: model %.2f Mops/s)\n",
                2 * model::pim_queue_single_segment(lp) * 1e-6);
  }

  banner("Ablation A3c: segment placement policy");
  {
    Table table({"placement", "Mops/s", "co-resident ops"}, 20);
    table.print_header();
    const auto run = [&](const char* name, SegmentPlacement placement,
                         std::size_t initial) {
      sim::QueueConfig c = cfg;
      c.initial_nodes = initial;
      PimQueueOptions opts;
      opts.placement = placement;
      const auto r = sim::run_pim_queue(c, opts);
      table.print_row({name, mops(r.run.ops_per_sec()),
                       std::to_string(r.co_resident_ops)});
      json.record(name, {{"placement", name}}, r.run.ops_per_sec());
    };
    // Exact-multiple prefill puts both roles on one core at t=0: the
    // round-robin policy never separates them again.
    run("round-robin", SegmentPlacement::kRoundRobin, 64 * 1024);
    run("avoid-deq-core", SegmentPlacement::kAvoidDequeueCore, 64 * 1024);
    run("opposite-deq-core", SegmentPlacement::kOppositeDequeueCore,
        64 * 1024);
  }

  banner("Ablation A3e: FC queue lock split (paper's two-lock modification)");
  {
    Table table({"FC variant", "Mops/s"}, 20);
    table.print_header();
    table.print_row({"one combiner lock",
                     mops(sim::run_fc_queue(cfg, /*single_lock=*/true)
                              .ops_per_sec())});
    table.print_row({"two combiner locks",
                     mops(sim::run_fc_queue(cfg).ops_per_sec())});
    std::printf("(the paper modified the FC queue so 'threads compete for "
                "two combiner locks' — this shows the ~2x that buys)\n");
  }

  banner("Ablation A3d: fat-node enqueue combining (Section 5.1)");
  {
    // Enqueue-only pressure shows the enqueue core's ceiling directly.
    sim::QueueConfig ecfg = cfg;
    ecfg.enqueuers = 24;
    ecfg.dequeuers = 0;
    Table table({"enq combining", "enq-side Mops/s", "note"}, 18);
    table.print_header();
    PimQueueOptions plain;
    table.print_row({"off",
                     mops(sim::run_pim_queue(ecfg, plain).run.ops_per_sec()),
                     "1 access/value"});
    PimQueueOptions fat;
    fat.enqueue_combining = true;
    table.print_row({"on",
                     mops(sim::run_pim_queue(ecfg, fat).run.ops_per_sec()),
                     "1 access/8 values"});
    std::printf("(the paper: 'store the nodes to be enqueued in an array as "
                "a fat node, to reduce memory accesses')\n");
  }
  return 0;
}
