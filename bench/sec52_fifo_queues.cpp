// Reproduces the Section 5.2 FIFO-queue analysis: throughput of the
// F&A-based queue, the flat-combining queue (two combiner locks), and the
// PIM-managed queue with pipelining, as the number of CPU threads grows.
//
// The model's bounds: F&A <= 1/Latomic per side, FC <= 1/(2 Lllc) per side,
// PIM ~= 1/Lpim per side once >= 2 Lmessage/Lpim CPUs keep it saturated —
// so at the paper's ratios the PIM queue ends ~2x the FC queue and ~3x the
// F&A queue.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/stats.hpp"
#include "model/queue_model.hpp"
#include "sim/ds/queues.hpp"

int main(int argc, char** argv) {
  using namespace pimds;
  using namespace pimds::bench;

  JsonReporter json(argc, argv, "sec52_fifo_queues");
  banner("Section 5.2: FIFO queue throughput vs threads (simulator)");
  const LatencyParams lp = LatencyParams::paper_defaults();
  std::printf("model bounds per side: F&A %.2f  FC %.2f  PIM %.2f Mops/s; "
              "PIM saturates at >= %zu CPUs/side\n\n",
              model::faa_queue(lp) * 1e-6, model::fc_queue(lp) * 1e-6,
              model::pim_queue_pipelined(lp) * 1e-6,
              model::min_cpus_to_saturate_pim(lp));

  Table table({"threads", "MS(CAS)", "F&A", "FC", "PIM", "PIM+comb",
               "PIM/FC", "PIM/F&A"},
              13);
  table.print_header();

  // Section 5.1 combining ratio of the LAST (most contended) PIM+comb run:
  // accepted enqueues per enqueue service batch.
  std::uint64_t comb_enq_ops = 0;
  std::uint64_t comb_enq_batches = 0;
  double last_faa = 0.0, last_fc = 0.0, last_pim = 0.0;
  // Closed-loop capacities at p = 24, reused to size the open-loop latency
  // table's offered rate below.
  double cap24_faa = 0.0, cap24_fc = 0.0, cap24_pim = 0.0;
  for (std::size_t p : {2, 4, 8, 12, 16, 24, 32, 48}) {
    sim::QueueConfig cfg;
    cfg.enqueuers = p / 2;
    cfg.dequeuers = p / 2;
    cfg.duration_ns = 15'000'000;
    const double ms = sim::run_ms_queue(cfg).ops_per_sec();
    const double faa = sim::run_faa_queue(cfg).ops_per_sec();
    const double fc = sim::run_fc_queue(cfg).ops_per_sec();
    const double pim =
        sim::run_pim_queue(cfg, sim::PimQueueOptions{}).run.ops_per_sec();
    sim::PimQueueOptions comb_opts;
    comb_opts.enqueue_combining = true;
    const sim::PimQueueResult comb = sim::run_pim_queue(cfg, comb_opts);
    comb_enq_ops = comb.enq_ops;
    comb_enq_batches = comb.enq_batches;
    last_faa = faa;
    last_fc = fc;
    last_pim = pim;
    if (p == 24) {
      cap24_faa = faa;
      cap24_fc = fc;
      cap24_pim = pim;
    }
    table.print_row({std::to_string(p), mops(ms), mops(faa), mops(fc),
                     mops(pim), mops(comb.run.ops_per_sec()), ratio(pim, fc),
                     ratio(pim, faa)});
    const JsonReporter::Params params{{"threads", std::to_string(p)}};
    json.record("ms_p" + std::to_string(p), params, ms);
    json.record("faa_p" + std::to_string(p), params, faa);
    json.record("fc_p" + std::to_string(p), params, fc);
    json.record("pim_p" + std::to_string(p), params, pim);
    json.record("pim_comb_p" + std::to_string(p), params,
                comb.run.ops_per_sec());
  }
  // Model conformance at the most-saturated point (p = 48): the per-side
  // bounds apply to enqueues and dequeues in parallel, so the combined
  // prediction is 2x each per-side bound.
  json.conformance("faa_queue.p48", 2.0 * model::faa_queue(lp), last_faa);
  json.conformance("fc_queue.p48", 2.0 * model::fc_queue(lp), last_fc);
  json.conformance("pim_queue.pipelined.p48",
                   2.0 * model::pim_queue_pipelined(lp), last_pim);
  if (comb_enq_batches > 0) {
    obs::Registry::instance().set_derived(
        "sim.pim_queue.combining_ratio",
        static_cast<double>(comb_enq_ops) /
            static_cast<double>(comb_enq_batches));
  }

  std::printf(
      "\nExpected shape (paper Sec. 5.2): all three flatten (contention /\n"
      "serialization bounds); once saturated, PIM ~= 2x FC and ~= 3x F&A.\n"
      "Below ~12 threads the PIM queue is CPU-limited (each round trip\n"
      "pays 2 Lmessage), exactly as the paper's saturation analysis says.\n"
      "The MS(CAS) column is an extra baseline: CAS retries degrade with\n"
      "threads, which is why the paper picked the F&A queue to beat.\n");

  banner("Per-operation latency at p = 24, open loop at 0.7x capacity "
         "(virtual ns)");
  {
    // The old closed-loop table suffered coordinated omission: each actor
    // could only issue as fast as the queue completed, so at saturation
    // every sample equalled the steady-state cycle time and p50 == p99
    // (degenerate rows: F&A 7.2/7.2 us). Now each actor injects on a
    // Poisson schedule at 70% of the structure's own measured closed-loop
    // capacity and latency runs intended-start -> completion, so queueing
    // delay — including delay behind a late injector — is charged to the
    // operation and the percentiles separate.
    Table table({"queue", "p50", "p90", "p99", "p999", "mean"}, 14);
    table.print_header();
    const auto row = [&](const char* name, double capacity, auto runner) {
      std::vector<double> lat;
      sim::QueueConfig cfg;
      cfg.enqueuers = cfg.dequeuers = 12;
      cfg.duration_ns = 10'000'000;
      cfg.latency_sink_ns = &lat;
      cfg.arrival = sim::ArrivalSchedule::kPoisson;
      // Aggregate offered rate = 0.7 * capacity split across 24 actors:
      // per-actor mean inter-arrival = actors / (0.7 * capacity_per_ns).
      cfg.arrival_period_ns =
          static_cast<double>(cfg.enqueuers + cfg.dequeuers) /
          (0.7 * capacity * 1e-9);
      runner(cfg);
      const Summary s = Summary::of(std::move(lat));
      char p50[32], p90[32], p99[32], p999[32], mean[32];
      std::snprintf(p50, sizeof(p50), "%.0f", s.p50);
      std::snprintf(p90, sizeof(p90), "%.0f", s.p90);
      std::snprintf(p99, sizeof(p99), "%.0f", s.p99);
      std::snprintf(p999, sizeof(p999), "%.0f", s.p999);
      std::snprintf(mean, sizeof(mean), "%.0f", s.mean);
      table.print_row({name, p50, p90, p99, p999, mean});
    };
    row("F&A", cap24_faa,
        [](const sim::QueueConfig& c) { return sim::run_faa_queue(c); });
    row("FC", cap24_fc,
        [](const sim::QueueConfig& c) { return sim::run_fc_queue(c); });
    row("PIM", cap24_pim, [](const sim::QueueConfig& c) {
      return sim::run_pim_queue(c, sim::PimQueueOptions{}).run;
    });
    std::printf(
        "(open system at 0.7x each queue's closed-loop capacity: the\n"
        "percentiles now include queueing delay — coordinated-omission-free\n"
        "— so the tails separate instead of collapsing onto the cycle time;\n"
        "the PIM queue's two message legs still undercut the others'\n"
        "serialization at equal offered load)\n");
  }
  return 0;
}
