// Ablation A2 (DESIGN.md): partition-count sweep for the PIM skip-list and
// the k > p/r1 crossover against the lock-free skip-list (Section 4.2).
#include <cstdio>

#include "bench/bench_util.hpp"
#include "model/skiplist_model.hpp"
#include "sim/ds/skiplists.hpp"

int main(int argc, char** argv) {
  using namespace pimds;
  using namespace pimds::bench;

  JsonReporter json(argc, argv, "ablation_partitions");
  banner("Ablation A2: PIM skip-list partition sweep and crossover");

  for (std::size_t p : {8, 16, 28}) {
    sim::SkipListConfig cfg;
    cfg.num_cpus = p;
    cfg.key_range = 1 << 15;
    cfg.initial_size = 1 << 14;
    cfg.duration_ns = 15'000'000;
    const double lf = sim::run_lockfree_skiplist(cfg).ops_per_sec();
    const double beta = model::estimate_beta(cfg.initial_size);
    const std::size_t k_pred =
        model::min_partitions_to_beat_lock_free(cfg.params, beta, p);

    std::printf("\np = %zu threads; lock-free baseline = %s Mops/s; model "
                "predicts crossover at k >= %zu\n",
                p, mops(lf).c_str(), k_pred);
    json.record("lockfree_p" + std::to_string(p),
                {{"threads", std::to_string(p)}}, lf);
    Table table({"k", "PIM Mops/s", "vs lock-free"}, 16);
    table.print_header();
    for (std::size_t k : {1, 2, 4, 8, 16, 32}) {
      const double pim = sim::run_pim_skiplist(cfg, k).ops_per_sec();
      table.print_row({std::to_string(k), mops(pim), ratio(pim, lf)});
      json.record("pim_p" + std::to_string(p) + "_k" + std::to_string(k),
                  {{"threads", std::to_string(p)},
                   {"partitions", std::to_string(k)}},
                  pim);
    }
  }

  std::printf(
      "\nReading: throughput scales with k until the p CPU clients cannot\n"
      "keep k cores busy; the crossover against lock-free lands near the\n"
      "predicted k ~ p/r1 (Section 4.2).\n");
  return 0;
}
