// Reproduces Table 1: approximate expected throughput of the five
// linked-list algorithms, from (a) the closed-form model and (b) the
// discrete-event simulator running the actual algorithms.
//
// Paper: Liu, Calciu, Herlihy, Mutlu — "Concurrent Data Structures for
// Near-Memory Computing", SPAA'17, Section 4.1.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "model/linked_list_model.hpp"
#include "sim/ds/linked_lists.hpp"

namespace {

using namespace pimds;
using namespace pimds::bench;

void run_one(JsonReporter& json, std::size_t n, std::size_t p) {
  sim::ListConfig cfg;
  cfg.num_cpus = p;
  cfg.key_range = 2 * n;  // equilibrium size = key_range / 2 = n
  cfg.initial_size = n;
  cfg.duration_ns = 30'000'000;
  const LatencyParams lp = cfg.params;

  std::printf("\nTable 1 with n = %zu nodes, p = %zu CPUs "
              "(Lcpu = %.0f ns, Lpim = %.0f ns, r1 = %.0f)\n",
              n, p, lp.cpu(), lp.pim(), lp.r1);
  Table table({"algorithm", "model Mops/s", "sim Mops/s", "sim/model"}, 26);
  table.print_header();

  const auto row = [&](const char* name, double model_tput, double sim_tput) {
    table.print_row({name, mops(model_tput), mops(sim_tput),
                     ratio(sim_tput, model_tput)});
    json.record(name,
                {{"list_size", std::to_string(n)},
                 {"threads", std::to_string(p)},
                 {"model_mops", mops(model_tput)}},
                sim_tput);
    json.conformance(std::string(name) + ".n" + std::to_string(n) + ".p" +
                         std::to_string(p),
                     model_tput, sim_tput);
  };

  row("fine-grained locks",
      model::fine_grained_lock_list(lp, n, p),
      sim::run_fine_grained_list(cfg).ops_per_sec());
  row("FC, no combining",
      model::fc_list_no_combining(lp, n),
      sim::run_fc_list(cfg, false).ops_per_sec());
  row("PIM, no combining",
      model::pim_list_no_combining(lp, n),
      sim::run_pim_list(cfg, false).ops_per_sec());
  row("FC, with combining",
      model::fc_list_combining(lp, n, p),
      sim::run_fc_list(cfg, true).ops_per_sec());
  row("PIM, with combining",
      model::pim_list_combining(lp, n, p),
      sim::run_pim_list(cfg, true).ops_per_sec());
}

}  // namespace

int main(int argc, char** argv) {
  JsonReporter json(argc, argv, "table1_linked_lists");
  banner("Table 1: linked-list throughput (model vs simulation)");
  run_one(json, 400, 8);
  run_one(json, 1000, 16);

  // The two analytic conclusions the paper draws from Table 1:
  const LatencyParams lp = LatencyParams::paper_defaults();
  std::printf("\nCrossover checks (n = 1000):\n");
  std::printf("  fine-grained lock list needs p >= %zu threads to match the "
              "naive PIM list (paper: p >= r1 = 3)\n",
              pimds::model::threads_to_beat_naive_pim(lp));
  std::printf("  PIM list with combining vs fine-grained at p = 16: %.2fx "
              "(paper: >= 1.5x at r1 = 3)\n",
              pimds::model::pim_list_combining(lp, 1000, 16) /
                  pimds::model::fine_grained_lock_list(lp, 1000, 16));
  return 0;
}
