// Google-benchmark microbenchmarks for the substrate primitives: fiber
// switches, virtual-time scheduling, the MPMC mailbox transport, the
// reclamation seam (EBR vs hazard pointers, read side and retire side),
// RNG, and the latency injector. These bound the overheads that the
// emulation adds on top of the modeled latencies.
#include <benchmark/benchmark.h>

#include <atomic>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/mpmc_queue.hpp"
#include "common/reclaim.hpp"
#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "obs/obs.hpp"
#include "sim/engine.hpp"
#include "sim/fiber.hpp"

namespace {

using namespace pimds;

void BM_Xoshiro(benchmark::State& state) {
  Xoshiro256 rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_Xoshiro);

void BM_XoshiroBounded(benchmark::State& state) {
  Xoshiro256 rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_below(12345));
}
BENCHMARK(BM_XoshiroBounded);

void BM_Zipf(benchmark::State& state) {
  Xoshiro256 rng(1);
  ZipfGenerator zipf(1 << 20, 0.99);
  for (auto _ : state) benchmark::DoNotOptimize(zipf.next(rng));
}
BENCHMARK(BM_Zipf);

void BM_FiberSwitchPair(benchmark::State& state) {
  sim::Fiber* self = nullptr;
  bool stop = false;
  sim::Fiber fiber([&] {
    while (!stop) self->yield_to_resumer();
  });
  self = &fiber;
  for (auto _ : state) fiber.resume();
  stop = true;
  fiber.resume();
}
BENCHMARK(BM_FiberSwitchPair);

void BM_SimEventDispatch(benchmark::State& state) {
  // Cost of one scheduled slice (sync -> dispatch -> resume), amortized
  // over a batch of slices inside one engine run.
  constexpr std::uint64_t kBatch = 10000;
  for (auto _ : state) {
    sim::Engine engine;
    engine.spawn("a", [&](sim::Context& ctx) {
      for (std::uint64_t i = 0; i < kBatch; ++i) {
        ctx.advance(1);
        ctx.sync();
      }
    });
    engine.run();
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kBatch));
}
BENCHMARK(BM_SimEventDispatch);

void BM_MpmcPushPop(benchmark::State& state) {
  MpmcQueue<std::uint64_t> q(1024);
  std::uint64_t i = 0;
  for (auto _ : state) {
    q.push(i++);
    benchmark::DoNotOptimize(q.try_pop());
  }
}
BENCHMARK(BM_MpmcPushPop);

// --- Reclamation-seam comparison (the numbers behind DESIGN.md §5f). ---
// Named domains, so every --json run carries the reclaim.micro.<policy>.*
// registry metrics alongside the records.

/// Guard enter/exit: EBR pins the epoch (two fenced stores), HP only bumps
/// a per-thread depth until a hazard is actually published.
void BM_ReclaimGuard(benchmark::State& state, ReclaimPolicy policy) {
  auto domain = make_reclaimer(policy, "micro");
  for (auto _ : state) {
    ReclaimGuard guard(*domain);
    benchmark::DoNotOptimize(&guard);
  }
}
BENCHMARK_CAPTURE(BM_ReclaimGuard, ebr, pimds::ReclaimPolicy::kEbr);
BENCHMARK_CAPTURE(BM_ReclaimGuard, hp, pimds::ReclaimPolicy::kHp);

/// Read-side cost per protected pointer: EBR is one acquire load; HP adds
/// the publish + store-load fence + revalidation loop.
void BM_ReclaimProtect(benchmark::State& state, ReclaimPolicy policy) {
  auto domain = make_reclaimer(policy, "micro");
  int target = 42;
  std::atomic<int*> src{&target};
  for (auto _ : state) {
    ReclaimGuard guard(*domain);
    benchmark::DoNotOptimize(guard.protect(0, src));
  }
}
BENCHMARK_CAPTURE(BM_ReclaimProtect, ebr, pimds::ReclaimPolicy::kEbr);
BENCHMARK_CAPTURE(BM_ReclaimProtect, hp, pimds::ReclaimPolicy::kHp);

/// Retire throughput including the amortized reclamation passes (EBR epoch
/// advance every batch, HP scan every threshold).
void BM_ReclaimRetire(benchmark::State& state, ReclaimPolicy policy) {
  auto domain = make_reclaimer(policy, "micro");
  for (auto _ : state) {
    auto* node = new std::uint64_t(7);
    ReclaimGuard guard(*domain);
    guard.retire(node);
  }
  domain->flush();
}
BENCHMARK_CAPTURE(BM_ReclaimRetire, ebr, pimds::ReclaimPolicy::kEbr);
BENCHMARK_CAPTURE(BM_ReclaimRetire, hp, pimds::ReclaimPolicy::kHp);

// --- Telemetry-plane costs (the numbers behind docs/OBSERVABILITY.md's
// "Telemetry & LoadMap" section). BM_MetricsSnapshot/BM_DeltaSnapshot/
// BM_TelemetryLine together bound one sampler tick; BM_LoadMapRecord is
// the per-op cost the LoadMap adds to the vault service path.

void BM_MetricsSnapshot(benchmark::State& state) {
  // Populate a registry comparable to a real bench run so the merge cost
  // is realistic (the process-wide registry already holds the runtime's
  // metrics from other benchmarks in this binary).
  auto& reg = obs::Registry::instance();
  for (int i = 0; i < 64; ++i) {
    reg.counter("micro.snap.c" + std::to_string(i)).add(1);
  }
  for (auto _ : state) {
    obs::MetricsSnapshot snap = reg.snapshot();
    benchmark::DoNotOptimize(snap.counters.data());
  }
}
BENCHMARK(BM_MetricsSnapshot);

void BM_DeltaSnapshot(benchmark::State& state) {
  // One sampler window: full snapshot + diff against the retained
  // baseline. This is what obs::Sampler pays per tick before serializing.
  auto& reg = obs::Registry::instance();
  reg.counter("micro.delta.c").add(1);
  obs::DeltaBaseline baseline;
  (void)reg.delta_snapshot(baseline);  // prime, like Sampler::start()
  for (auto _ : state) {
    obs::MetricsSnapshot delta = reg.delta_snapshot(baseline);
    benchmark::DoNotOptimize(delta.counters.data());
  }
}
BENCHMARK(BM_DeltaSnapshot);

void BM_TelemetryLine(benchmark::State& state) {
  // JSONL serialization of one windowed delta (no file I/O).
  auto& reg = obs::Registry::instance();
  reg.counter("micro.line.c").add(1);
  reg.histogram("micro.line.h").record(123);
  obs::DeltaBaseline baseline;
  const obs::MetricsSnapshot delta = reg.delta_snapshot(baseline);
  std::uint64_t seq = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        obs::telemetry_line(delta, seq++, 1'000'000, 100'000'000));
  }
}
BENCHMARK(BM_TelemetryLine);

void BM_LoadMapRecord(benchmark::State& state) {
  // Hot-path cost on the vault service loop: sharded counter bump + range
  // bucket + SpaceSaving sketch update, Zipf-keyed so the sketch sees the
  // eviction path it sees in production.
  obs::LoadMap::Options opts;
  opts.num_vaults = 8;
  opts.key_min = 1;
  opts.key_max = 1 << 15;
  opts.registry_prefix = "";  // stand-alone: skip registry registration
  obs::LoadMap map(opts);
  Xoshiro256 rng(1);
  ZipfGenerator zipf(1 << 15, 0.99);
  for (auto _ : state) {
    const std::uint64_t key = zipf.next(rng) + 1;
    map.record(key & 7, key);
  }
}
BENCHMARK(BM_LoadMapRecord);

void BM_LatencyInjectionPim(benchmark::State& state) {
  auto& inj = LatencyInjector::instance();
  LatencyParams lp;
  lp.pim_ns = static_cast<double>(state.range(0));
  inj.configure(lp);
  inj.set_enabled(true);
  for (auto _ : state) charge_pim_access();
  inj.set_enabled(false);
}
BENCHMARK(BM_LatencyInjectionPim)->Arg(200)->Arg(1000)->Arg(5000);

}  // namespace

namespace {

// Bridges google-benchmark's reporting into the repo's own JSON schema so
// BENCH_micro_primitives.json has the same {bench, metrics, records} shape
// as every other binary (it used to emit google-benchmark's native format,
// which downstream tooling could not parse uniformly).
class ForwardingReporter : public benchmark::ConsoleReporter {
 public:
  explicit ForwardingReporter(pimds::bench::JsonReporter& json)
      : json_(json) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      if (run.run_type != Run::RT_Iteration) continue;
      double ops = 0.0;
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        ops = items->second;
      } else if (run.real_accumulated_time > 0.0) {
        ops = static_cast<double>(run.iterations) / run.real_accumulated_time;
      }
      json_.record(run.benchmark_name(), {}, ops);
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

 private:
  pimds::bench::JsonReporter& json_;
};

}  // namespace

// Same CLI contract as the other bench binaries: `--json <file>` emits a
// schema-consistent result file (and --trace/--no-obs work too). The repo
// flags are stripped before benchmark::Initialize sees the argument list.
int main(int argc, char** argv) {
  pimds::bench::JsonReporter json(argc, argv, "micro_primitives");
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" || arg == "--trace" || arg == "--telemetry" ||
        arg == "--telemetry-interval-ms") {
      ++i;  // skip the flag's value as well
      continue;
    }
    if (arg == "--no-obs") continue;
    args.push_back(argv[i]);
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  ForwardingReporter reporter(json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
