// Google-benchmark microbenchmarks for the substrate primitives: fiber
// switches, virtual-time scheduling, the MPMC mailbox transport, EBR
// guards, RNG, and the latency injector. These bound the overheads that
// the emulation adds on top of the modeled latencies.
#include <benchmark/benchmark.h>

#include <optional>
#include <string>
#include <vector>

#include "common/ebr.hpp"
#include "common/mpmc_queue.hpp"
#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "sim/engine.hpp"
#include "sim/fiber.hpp"

namespace {

using namespace pimds;

void BM_Xoshiro(benchmark::State& state) {
  Xoshiro256 rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_Xoshiro);

void BM_XoshiroBounded(benchmark::State& state) {
  Xoshiro256 rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_below(12345));
}
BENCHMARK(BM_XoshiroBounded);

void BM_Zipf(benchmark::State& state) {
  Xoshiro256 rng(1);
  ZipfGenerator zipf(1 << 20, 0.99);
  for (auto _ : state) benchmark::DoNotOptimize(zipf.next(rng));
}
BENCHMARK(BM_Zipf);

void BM_FiberSwitchPair(benchmark::State& state) {
  sim::Fiber* self = nullptr;
  bool stop = false;
  sim::Fiber fiber([&] {
    while (!stop) self->yield_to_resumer();
  });
  self = &fiber;
  for (auto _ : state) fiber.resume();
  stop = true;
  fiber.resume();
}
BENCHMARK(BM_FiberSwitchPair);

void BM_SimEventDispatch(benchmark::State& state) {
  // Cost of one scheduled slice (sync -> dispatch -> resume), amortized
  // over a batch of slices inside one engine run.
  constexpr std::uint64_t kBatch = 10000;
  for (auto _ : state) {
    sim::Engine engine;
    engine.spawn("a", [&](sim::Context& ctx) {
      for (std::uint64_t i = 0; i < kBatch; ++i) {
        ctx.advance(1);
        ctx.sync();
      }
    });
    engine.run();
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kBatch));
}
BENCHMARK(BM_SimEventDispatch);

void BM_MpmcPushPop(benchmark::State& state) {
  MpmcQueue<std::uint64_t> q(1024);
  std::uint64_t i = 0;
  for (auto _ : state) {
    q.push(i++);
    benchmark::DoNotOptimize(q.try_pop());
  }
}
BENCHMARK(BM_MpmcPushPop);

void BM_EbrGuard(benchmark::State& state) {
  EbrDomain domain;
  for (auto _ : state) {
    EbrDomain::Guard guard(domain);
    benchmark::DoNotOptimize(&guard);
  }
}
BENCHMARK(BM_EbrGuard);

void BM_LatencyInjectionPim(benchmark::State& state) {
  auto& inj = LatencyInjector::instance();
  LatencyParams lp;
  lp.pim_ns = static_cast<double>(state.range(0));
  inj.configure(lp);
  inj.set_enabled(true);
  for (auto _ : state) charge_pim_access();
  inj.set_enabled(false);
}
BENCHMARK(BM_LatencyInjectionPim)->Arg(200)->Arg(1000)->Arg(5000);

}  // namespace

// Same CLI contract as the other bench binaries: `--json <file>` emits a
// machine-readable result file. Google-benchmark already knows how to do
// that, so the flag is translated to --benchmark_out before Initialize.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  std::string fmt_flag = "--benchmark_out_format=json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      out_flag = std::string("--benchmark_out=") + argv[i + 1];
      args.erase(args.begin() + i, args.begin() + i + 2);
      args.push_back(out_flag.data());
      args.push_back(fmt_flag.data());
      break;
    }
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
