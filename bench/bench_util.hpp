// Shared table-printing helpers for the paper-reproduction benchmarks.
// Every bench binary prints the rows/series of one table or figure from the
// paper; EXPERIMENTS.md records the comparison against the published shape.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace pimds::bench {

/// Fixed-width table writer for terminal output.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int col_width = 14)
      : headers_(std::move(headers)), width_(col_width) {}

  void print_header() const {
    for (const auto& h : headers_) std::printf("%-*s", width_, h.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      for (int j = 0; j < width_ - 2; ++j) std::printf("-");
      std::printf("  ");
    }
    std::printf("\n");
  }

  void print_row(const std::vector<std::string>& cells) const {
    for (const auto& c : cells) std::printf("%-*s", width_, c.c_str());
    std::printf("\n");
  }

 private:
  std::vector<std::string> headers_;
  int width_;
};

inline std::string mops(double ops_per_sec) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ops_per_sec * 1e-6);
  return buf;
}

inline std::string ratio(double a, double b) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", a / b);
  return buf;
}

inline void banner(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

}  // namespace pimds::bench
