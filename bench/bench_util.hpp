// Shared helpers for the paper-reproduction benchmarks: fixed-width table
// printing plus machine-readable JSON emission. Every bench binary prints
// the rows/series of one table or figure from the paper (EXPERIMENTS.md
// records the comparison against the published shape) and, when invoked
// with `--json <file>`, additionally writes a BENCH_*.json record
// (name, params, ops/sec) so the perf trajectory is machine-readable.
// Flags understood by every bench binary (via JsonReporter):
//   --json <file>    machine-readable results + a "metrics" section
//                    (obs::Registry snapshot) in <file>
//   --trace <file>   record runtime/sim events and write a Chrome/Perfetto
//                    trace_event JSON to <file> on exit
//   --no-obs         disable metrics AND tracing (overhead measurement);
//                    also suppresses --telemetry
//   --telemetry <file>          windowed JSONL time-series (obs::Sampler)
//   --telemetry-interval-ms <n> sampling interval (default 100)
// Environment: PIMDS_FLIGHT_DUMP=<file> dumps the flight-recorder ring of
// recent windows there at exit (and on SIGUSR1), even without --telemetry.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "model/conformance.hpp"
#include "obs/obs.hpp"

namespace pimds::bench {

/// Fixed-width table writer for terminal output.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int col_width = 14)
      : headers_(std::move(headers)), width_(col_width) {}

  void print_header() const {
    for (const auto& h : headers_) std::printf("%-*s", width_, h.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      for (int j = 0; j < width_ - 2; ++j) std::printf("-");
      std::printf("  ");
    }
    std::printf("\n");
  }

  void print_row(const std::vector<std::string>& cells) const {
    for (const auto& c : cells) std::printf("%-*s", width_, c.c_str());
    std::printf("\n");
  }

 private:
  std::vector<std::string> headers_;
  int width_;
};

inline std::string mops(double ops_per_sec) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ops_per_sec * 1e-6);
  return buf;
}

inline std::string ratio(double a, double b) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", a / b);
  return buf;
}

inline void banner(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

/// Machine-readable benchmark output. Construct from main()'s argv; when
/// `--json <file>` was passed, every record() call is accumulated and the
/// file is written on destruction (or an explicit flush()):
///
///   {"bench": "<binary>", "records": [
///     {"name": "...", "params": {"k": "v"}, "ops_per_sec": 1.23e6}, ...]}
///
/// With no --json flag the reporter is inert, so call sites need no guards.
class JsonReporter {
 public:
  using Params = std::vector<std::pair<std::string, std::string>>;

  JsonReporter(int argc, char** argv, std::string bench_name)
      : bench_(std::move(bench_name)) {
    obs::TelemetryOptions topts;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--json" && i + 1 < argc) {
        path_ = argv[i + 1];
      } else if (arg == "--trace" && i + 1 < argc) {
        trace_path_ = argv[i + 1];
      } else if (arg == "--telemetry" && i + 1 < argc) {
        topts.path = argv[i + 1];
      } else if (arg == "--telemetry-interval-ms" && i + 1 < argc) {
        topts.interval_ms =
            static_cast<std::uint64_t>(std::strtoull(argv[i + 1], nullptr, 10));
      } else if (arg == "--no-obs") {
        obs::set_metrics_enabled(false);
      }
    }
    if (!trace_path_.empty()) {
      obs::set_trace_enabled(true);
      // Per-op causal spans (op / req_dispatch / vault_service) are far
      // denser than the protocol events alone; the default 16K-event ring
      // would evict the early runs' newEnqSeg/drain_batch spans. Benches
      // are short-lived, so a fatter ring is the right trade.
      obs::set_trace_buffer_capacity(1u << 18);
    }
    bool no_obs = false;
    for (int i = 1; i < argc; ++i) {
      if (std::string(argv[i]) == "--no-obs") {
        // Takes precedence over --trace/--telemetry: --no-obs measures the
        // disabled overhead, so nothing may record or sample.
        obs::set_trace_enabled(false);
        no_obs = true;
      }
    }
    if (const char* dump = std::getenv("PIMDS_FLIGHT_DUMP")) {
      // Flight recording rides the sampler: the env var alone starts a
      // memory-only sampler (no JSONL file) whose ring dumps at exit.
      if (dump[0] != '\0') topts.flight_dump_path = dump;
    }
    if (!no_obs && (!topts.path.empty() || !topts.flight_dump_path.empty())) {
      sampler_ = std::make_unique<obs::Sampler>(topts);
      sampler_->start();
    }
  }

  JsonReporter(const JsonReporter&) = delete;
  JsonReporter& operator=(const JsonReporter&) = delete;

  ~JsonReporter() { flush(); }

  bool enabled() const noexcept { return !path_.empty(); }

  void record(const std::string& name, const Params& params,
              double ops_per_sec) {
    if (!enabled()) return;
    std::string r = "    {\"name\": \"" + escape(name) + "\", \"params\": {";
    for (std::size_t i = 0; i < params.size(); ++i) {
      if (i > 0) r += ", ";
      r += "\"" + escape(params[i].first) + "\": \"" +
           escape(params[i].second) + "\"";
    }
    char ops[40];
    std::snprintf(ops, sizeof(ops), "%.6g", ops_per_sec);
    r += "}, \"ops_per_sec\": ";
    r += ops;
    r += "}";
    records_.push_back(std::move(r));
  }

  /// Record with an attached `"latency"` object (pre-rendered JSON, e.g.
  /// from an open-loop rate point: percentile ladder, backlog accounting,
  /// per-phase p99). `latency_json` must be a complete JSON value.
  void record_with_latency(const std::string& name, const Params& params,
                           double ops_per_sec,
                           const std::string& latency_json) {
    if (!enabled()) return;
    record(name, params, ops_per_sec);
    std::string& r = records_.back();
    r.pop_back();  // strip the closing '}'
    r += ", \"latency\": " + latency_json + "}";
  }

  /// Model-conformance row: analytic prediction vs. the measured number for
  /// one named config. Accumulated rows land in the JSON's "conformance"
  /// section (emitted even when empty, so consumers can rely on the key).
  void conformance(const std::string& name, double predicted_ops_per_sec,
                   double measured_ops_per_sec) {
    if (!enabled()) return;
    conformance_.push_back(
        {name, predicted_ops_per_sec, measured_ops_per_sec});
  }

  /// Latency-conformance row (predicted vs measured sojourn, M/D/1): lands
  /// in the "conformance" section's "latency" array.
  void conformance_latency(model::LatencyConformanceRow row) {
    if (!enabled()) return;
    latency_conformance_.push_back(std::move(row));
  }

  /// Extra top-level numeric fact (e.g. a speedup ratio).
  void note(const std::string& key, double value) {
    if (!enabled()) return;
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    notes_.push_back("  \"" + escape(key) + "\": " + buf);
  }

  /// Snapshot the phase-attribution section NOW instead of at flush time.
  /// Benches that run several configurations in one process (ablations,
  /// seed-vs-optimized comparisons) call Registry::reset() before the run
  /// the attribution should describe and capture right after it; otherwise
  /// the section averages the intentionally-degraded legs in with the
  /// headline configuration and gates like perf_gate.py read noise.
  void capture_attribution() {
    if (!enabled()) return;
    attribution_ = obs::attribution_json(obs::attribution_report(), 2);
  }

  void flush() {
    if (flushed_) return;
    flushed_ = true;
    if (sampler_ != nullptr) {
      // Stop before the metrics snapshot below so the final window (and the
      // flight dump, when configured) is already on disk and the sampler's
      // self-metering counters are settled.
      sampler_->stop();
      std::printf("(telemetry: %zu windows%s%s)\n", sampler_->samples(),
                  sampler_->options().path.empty() ? "" : " -> ",
                  sampler_->options().path.c_str());
    }
    if (!trace_path_.empty()) {
      if (obs::write_chrome_trace(trace_path_)) {
        std::printf("(trace written to %s: %zu events)\n", trace_path_.c_str(),
                    obs::trace_event_count());
      } else {
        std::fprintf(stderr, "bench: cannot write --trace output to %s\n",
                     trace_path_.c_str());
      }
    }
    if (!enabled()) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot open %s for --json output\n",
                   path_.c_str());
      return;
    }
    // v2: records may carry a "latency" object and conformance a "latency"
    // array (both optional, so v1 consumers keep working).
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n", escape(bench_).c_str());
    std::fprintf(f, "  \"schema\": \"pimds.bench.v2\",\n");
    for (const auto& n : notes_) std::fprintf(f, "%s,\n", n.c_str());
    if (sampler_ != nullptr && !sampler_->options().path.empty()) {
      std::fprintf(f,
                   "  \"telemetry\": {\"path\": \"%s\", \"interval_ms\": "
                   "%llu, \"samples\": %zu},\n",
                   escape(sampler_->options().path).c_str(),
                   static_cast<unsigned long long>(
                       sampler_->options().interval_ms),
                   sampler_->samples());
    }
    std::fprintf(f, "  \"conformance\": %s,\n",
                 model::conformance_json(conformance_, latency_conformance_, 2)
                     .c_str());
    if (attribution_.empty()) capture_attribution();
    std::fprintf(f, "  \"attribution\": %s,\n", attribution_.c_str());
    std::fprintf(f, "  \"metrics\": %s,\n",
                 obs::Registry::instance().to_json(2).c_str());
    std::fprintf(f, "  \"records\": [\n");
    for (std::size_t i = 0; i < records_.size(); ++i) {
      std::fprintf(f, "%s%s\n", records_[i].c_str(),
                   i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("(json written to %s)\n", path_.c_str());
  }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out.push_back(c);
    }
    return out;
  }

  std::string bench_;
  std::string path_;
  std::string trace_path_;
  std::unique_ptr<obs::Sampler> sampler_;
  std::vector<std::string> records_;
  std::vector<std::string> notes_;
  std::string attribution_;
  std::vector<model::ConformanceRow> conformance_;
  std::vector<model::LatencyConformanceRow> latency_conformance_;
  bool flushed_ = false;
};

}  // namespace pimds::bench
