#!/usr/bin/env python3
"""Validate and summarize a telemetry JSONL stream (obs::Sampler output).

Stdlib-only, like trace_report.py. Default mode validates the stream and
prints a per-vault utilization summary:

  telemetry_report.py RUN.telemetry.jsonl

Validation: every line is a JSON object with schema == "pimds.telemetry.v1",
seq strictly increasing, t_wall_ns strictly increasing, interval_ns > 0,
and counters/gauges/histograms present as objects. The line SHAPE is
schema-stable; the metric-name sets are dynamic by design -- externally
registered metrics (mailbox counters, LoadMap vault counters) come and go
with the component that owns them, and readers treat absence as "metric
not live this window".

Per-vault summary: counter families matching r"\\.vault(\\d+)\\.(\\w+)$" are
grouped by (family prefix, metric); for the family with the largest total
the report prints per-vault op shares, the windowed peak imbalance ratio
(hottest vault / mean over one window), and -- when busy_ns counters are
present -- per-vault utilization (windowed busy_ns / wall time).

  telemetry_report.py RUN.telemetry.jsonl --assert-hot-vault \\
      [--threshold 1.5] [--expect-vault N] [--min-window-ops 100]

Asserts the skew acceptance criterion: some window must show an imbalance
ratio >= threshold (using the MAX over eligible windows, not the aggregate
-- uniform warm-up/cool-down windows dilute the aggregate). Windows with
fewer than --min-window-ops total ops are ignored as noise. With
--expect-vault, the hottest vault of the peak window must be that vault.

  telemetry_report.py RUN.telemetry.jsonl --assert-rebalance-settles \\
      [--threshold 1.5] [--settle-threshold 1.5] [--min-window-ops 100]

The INVERTED assertion for active-rebalancer runs: the stream must show a
hot spot early (peak imbalance >= threshold), at least one
rebalancer.triggered migration, and a settled tail -- the final third's
eligible windows must all stay below --settle-threshold.

  telemetry_report.py RUN.telemetry.jsonl --assert-latency \\
      [--latency-family total_ns] [--min-window-count 50] \\
      [--max-p99-ns N] [--min-latency-windows 1]

Tail-latency acceptance for open-loop runs: the optional per-window
"latency" section (interpolated percentiles for every latency.* histogram,
emitted by obs::LatencyRecorder families) must be present in enough
windows. Every matching entry with count >= --min-window-count must carry
a monotone percentile ladder (p50 <= p90 <= p99 <= p999 <= max), at least
--min-latency-windows such windows must exist, and with --max-p99-ns no
eligible window's p99 may exceed the bound. --latency-family is a
substring filter over histogram names (default "total_ns": judge
end-to-end sojourn, not the sched_lag/service components).

Also understands flight-recorder dumps ("pimds.flight.v1": a single JSON
object with a "samples" list of telemetry lines) -- pass the dump path and
the same validation/summary runs over the embedded samples.

Exit codes: 0 ok, 1 usage/IO error, 2 validation or assertion failure.
"""

import argparse
import json
import re
import sys
from collections import defaultdict

SCHEMA = "pimds.telemetry.v1"
FLIGHT_SCHEMA = "pimds.flight.v1"
VAULT_RE = re.compile(r"^(.*)\.vault(\d+)\.(\w+)$")


def fail(msg):
    print(f"telemetry_report: FAIL: {msg}", file=sys.stderr)
    sys.exit(2)


def load_windows(path):
    """Parse a JSONL stream or a flight dump into a list of window dicts."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        print(f"telemetry_report: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(1)
    stripped = text.lstrip()
    if not stripped:
        fail(f"{path} is empty")
    if stripped.startswith("{") and f'"{FLIGHT_SCHEMA}"' in stripped[:200]:
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as e:
            fail(f"{path} is not valid JSON (flight dump): {e}")
        if doc.get("schema") != FLIGHT_SCHEMA:
            fail(f'flight dump schema is {doc.get("schema")!r}, '
                 f"expected {FLIGHT_SCHEMA!r}")
        samples = doc.get("samples")
        if not isinstance(samples, list):
            fail('flight dump missing a "samples" list')
        print(f"{path}: flight dump, {len(samples)} retained windows, "
              f"{doc.get('dropped', 0)} dropped")
        return samples
    windows = []
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        try:
            windows.append(json.loads(line))
        except json.JSONDecodeError as e:
            fail(f"{path}:{lineno} is not valid JSON: {e}")
    return windows


def validate(windows, path):
    if not windows:
        fail(f"{path} contains no telemetry windows")
    prev_seq = None
    prev_wall = None
    for i, w in enumerate(windows):
        where = f"window[{i}]"
        if not isinstance(w, dict):
            fail(f"{where} is not an object")
        if w.get("schema") != SCHEMA:
            fail(f'{where} schema is {w.get("schema")!r}, expected {SCHEMA!r}')
        for key in ("seq", "t_wall_ns", "interval_ns"):
            v = w.get(key)
            if not isinstance(v, int) or isinstance(v, bool):
                fail(f"{where} {key!r} must be an integer")
        if prev_seq is not None and w["seq"] <= prev_seq:
            fail(f"{where} seq {w['seq']} not strictly increasing "
                 f"(previous {prev_seq})")
        if prev_wall is not None and w["t_wall_ns"] <= prev_wall:
            fail(f"{where} t_wall_ns not strictly increasing")
        if w["interval_ns"] <= 0:
            fail(f"{where} interval_ns must be > 0")
        prev_seq, prev_wall = w["seq"], w["t_wall_ns"]
        for section in ("counters", "gauges", "histograms"):
            if not isinstance(w.get(section), dict):
                fail(f"{where} missing object section {section!r}")
        for name, v in w["counters"].items():
            if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                fail(f"{where} counter {name!r} must be a non-negative int")
        for name, h in w["histograms"].items():
            for key in ("count", "mean", "p50", "p90", "p99", "p999", "max"):
                if key not in h:
                    fail(f"{where} histogram {name!r} missing {key!r}")
        lat = w.get("latency")
        if lat is not None:
            if not isinstance(lat, dict):
                fail(f'{where} "latency" must be an object')
            for name, h in lat.items():
                if not name.startswith("latency."):
                    fail(f'{where} latency entry {name!r} outside the '
                         f'"latency." namespace')
                for key in ("count", "mean", "p50", "p90", "p99", "p999",
                            "max"):
                    if key not in h:
                        fail(f"{where} latency {name!r} missing {key!r}")
    return windows


def vault_families(windows):
    """(prefix, metric) -> vault -> [per-window deltas]."""
    fams = defaultdict(lambda: defaultdict(lambda: [0] * len(windows)))
    for i, w in enumerate(windows):
        for name, v in w["counters"].items():
            m = VAULT_RE.match(name)
            if m:
                fams[(m.group(1), m.group(3))][int(m.group(2))][i] = v
    return fams


def pick_ops_family(fams, family_prefix=None):
    """The 'ops'-like family with the largest total traffic. With
    family_prefix, only families whose prefix starts with it are considered
    (e.g. --family skiplist picks served ops over runtime message counts,
    which also include migration streams and deflate under combining)."""
    best, best_total = None, -1
    for key, per_vault in fams.items():
        if key[1] in ("busy_ns",):
            continue
        if family_prefix and not key[0].startswith(family_prefix):
            continue
        total = sum(sum(deltas) for deltas in per_vault.values())
        if total > best_total:
            best, best_total = key, total
    return best


def window_imbalances(per_vault, n_windows, min_window_ops):
    """[(window index, total, hottest vault, imbalance ratio)] per window."""
    out = []
    vaults = sorted(per_vault)
    for i in range(n_windows):
        loads = [per_vault[v][i] for v in vaults]
        total = sum(loads)
        if total < min_window_ops:
            continue
        mean = total / len(loads)
        peak = max(loads)
        hot = vaults[loads.index(peak)]
        out.append((i, total, hot, peak / mean if mean > 0 else 0.0))
    return out


def summarize(windows, path, min_window_ops, family_prefix=None):
    wall = windows[-1]["t_wall_ns"] - windows[0]["t_wall_ns"] + \
        windows[0]["interval_ns"]
    n_counters = len({k for w in windows for k in w["counters"]})
    print(f"{path}: OK {len(windows)} windows over {wall / 1e9:.2f}s, "
          f"{n_counters} counters")
    sampler = [w["histograms"].get("telemetry.sample_ns") for w in windows]
    ticks = sum(h["count"] for h in sampler if h)
    if ticks:
        worst_p99 = max(h["p99"] for h in sampler if h)
        print(f"  sampler self-cost: {ticks} metered ticks, "
              f"worst window p99 = {worst_p99 / 1e3:.1f}us")

    fams = vault_families(windows)
    key = pick_ops_family(fams, family_prefix)
    if key is None:
        print("  no per-vault counter families -- nothing to attribute")
        return
    per_vault = fams[key]
    family = f"{key[0]}.vault<k>.{key[1]}"
    vaults = sorted(per_vault)
    totals = {v: sum(per_vault[v]) for v in vaults}
    grand = sum(totals.values())
    print(f"  per-vault load ({family}, {grand} ops total):")
    for v in vaults:
        share = 100.0 * totals[v] / grand if grand else 0.0
        print(f"    vault{v}: {totals[v]:>10} ops ({share:5.1f}%)")
    imb = window_imbalances(per_vault, len(windows), min_window_ops)
    if imb:
        i, total, hot, ratio = max(imb, key=lambda t: t[3])
        print(f"  peak window imbalance: window[{i}] ratio {ratio:.2f} "
              f"(hottest vault{hot}, {total} ops in window; "
              f"{len(imb)}/{len(windows)} windows eligible at "
              f">= {min_window_ops} ops)")

    busy = fams.get((key[0].rsplit(".", 1)[0] + ".runtime", "busy_ns")) \
        or next((fams[k] for k in fams if k[1] == "busy_ns"), None)
    if busy:
        print("  per-vault utilization (busy_ns / wall):")
        for v in sorted(busy):
            util = sum(busy[v]) / wall if wall else 0.0
            print(f"    vault{v}: {100.0 * util:5.1f}%")
    return key


def assert_hot_vault(windows, fams, key, threshold, expect_vault,
                     min_window_ops):
    if key is None:
        fail("--assert-hot-vault: no per-vault counter family in the stream")
    imb = window_imbalances(fams[key], len(windows), min_window_ops)
    if not imb:
        fail(f"--assert-hot-vault: no window reached {min_window_ops} ops")
    i, total, hot, ratio = max(imb, key=lambda t: t[3])
    if ratio < threshold:
        fail(f"--assert-hot-vault: peak imbalance {ratio:.2f} "
             f"(window[{i}], hottest vault{hot}) below threshold "
             f"{threshold:.2f}")
    if expect_vault is not None and hot != expect_vault:
        fail(f"--assert-hot-vault: peak window's hottest vault is vault{hot}, "
             f"expected vault{expect_vault}")
    print(f"  hot-vault assertion OK: window[{i}] vault{hot} "
          f"ratio {ratio:.2f} >= {threshold:.2f} ({total} ops)")


def assert_rebalance_settles(windows, fams, key, threshold, settle_threshold,
                             min_window_ops):
    """The INVERTED skew assertion for active-rebalancer runs: the stream
    must show a real hot spot early (peak imbalance >= threshold), at least
    one rebalancer.triggered migration, and a settled tail -- every eligible
    window in the final third must stay BELOW settle_threshold. A stream
    that stays hot to the end means the control loop never closed."""
    if key is None:
        fail("--assert-rebalance-settles: no per-vault counter family")
    triggered = sum(w["counters"].get("rebalancer.triggered", 0)
                    for w in windows)
    if triggered == 0:
        fail("--assert-rebalance-settles: rebalancer.triggered never "
             "incremented -- no migration ran")
    imb = window_imbalances(fams[key], len(windows), min_window_ops)
    if len(imb) < 3:
        fail(f"--assert-rebalance-settles: only {len(imb)} eligible "
             f"window(s) at >= {min_window_ops} ops -- need at least 3")
    cutoff = windows[-1]["t_wall_ns"] - \
        (windows[-1]["t_wall_ns"] - windows[0]["t_wall_ns"]) // 3
    head = [t for t in imb if windows[t[0]]["t_wall_ns"] < cutoff]
    tail = [t for t in imb if windows[t[0]]["t_wall_ns"] >= cutoff]
    if not head or not tail:
        fail("--assert-rebalance-settles: eligible windows do not span "
             "both the head and the final third of the run")
    peak_head = max(t[3] for t in head)
    peak_tail = max(t[3] for t in tail)
    if peak_head < threshold:
        fail(f"--assert-rebalance-settles: early peak imbalance "
             f"{peak_head:.2f} below {threshold:.2f} -- the workload "
             f"never produced the hot spot the scenario is about")
    if peak_tail >= settle_threshold:
        fail(f"--assert-rebalance-settles: final-third peak imbalance "
             f"{peak_tail:.2f} did not settle below {settle_threshold:.2f} "
             f"(early peak {peak_head:.2f}, {triggered} migrations)")
    print(f"  rebalance-settles assertion OK: early peak {peak_head:.2f} "
          f">= {threshold:.2f}, final-third peak {peak_tail:.2f} < "
          f"{settle_threshold:.2f}, {triggered} migration(s)")


def assert_latency(windows, family, min_count, max_p99_ns, min_windows):
    """Tail-latency acceptance over the per-window "latency" section.

    Judges only the interpolated entries (the sharper 12.5% percentile
    bound); the plain histograms block keeps midpoint percentiles for the
    existing consumers. Windows below min_count are skipped as noise, not
    failed -- a stalled injector legitimately produces thin windows."""
    eligible = 0
    worst_p99 = 0.0
    worst_at = None
    names = set()
    any_section = False
    for i, w in enumerate(windows):
        lat = w.get("latency")
        if lat is None:
            continue
        any_section = True
        for name, h in lat.items():
            if family and family not in name:
                continue
            names.add(name)
            ladder = [h["p50"], h["p90"], h["p99"], h["p999"], h["max"]]
            # Percentiles are serialized at 6 significant digits while max
            # is an exact integer, so a clamped p999 can PRINT up to 5e-6
            # above max; only violations past that rounding are real.
            for lo, hi in zip(ladder, ladder[1:]):
                if lo > hi * (1 + 1e-5):
                    fail(f"--assert-latency: window[{i}] {name!r} "
                         f"percentile ladder not monotone: {ladder}")
            if h["count"] < min_count:
                continue
            eligible += 1
            if h["p99"] > worst_p99:
                worst_p99, worst_at = h["p99"], (i, name)
    if not any_section:
        fail('--assert-latency: no window carries a "latency" section '
             "(stream predates pimds.telemetry latency blocks, or no "
             "LatencyRecorder family was live)")
    if not names:
        fail(f"--assert-latency: no latency histogram matches "
             f"family filter {family!r}")
    if eligible < min_windows:
        fail(f"--assert-latency: only {eligible} window entr(ies) matched "
             f"{family!r} with count >= {min_count}; need {min_windows}")
    if max_p99_ns is not None and worst_p99 > max_p99_ns:
        i, name = worst_at
        fail(f"--assert-latency: window[{i}] {name!r} p99 "
             f"{worst_p99:.0f}ns exceeds bound {max_p99_ns:.0f}ns")
    bound = (f", worst p99 {worst_p99 / 1e3:.1f}us <= "
             f"{max_p99_ns / 1e3:.1f}us" if max_p99_ns is not None
             else f", worst p99 {worst_p99 / 1e3:.1f}us (unbounded)")
    print(f"  latency assertion OK: {eligible} eligible window entries "
          f"across {len(names)} famil(ies){bound}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("file", help="telemetry JSONL (or a flight dump JSON)")
    ap.add_argument(
        "--assert-hot-vault",
        action="store_true",
        help="fail (exit 2) unless some window shows imbalance >= threshold",
    )
    ap.add_argument(
        "--assert-rebalance-settles",
        action="store_true",
        help="inverted assertion for active-rebalancer runs: early peak "
        "imbalance >= threshold, >= 1 rebalancer.triggered migration, and "
        "every eligible final-third window < --settle-threshold",
    )
    ap.add_argument(
        "--settle-threshold",
        type=float,
        default=1.5,
        help="final-third windows must stay below this ratio (default 1.5)",
    )
    ap.add_argument(
        "--threshold",
        type=float,
        default=1.5,
        help="minimum peak imbalance ratio (hottest / mean), default 1.5",
    )
    ap.add_argument(
        "--expect-vault",
        type=int,
        default=None,
        help="the peak window's hottest vault must be this one",
    )
    ap.add_argument(
        "--min-window-ops",
        type=int,
        default=100,
        help="ignore windows with fewer total family ops than this",
    )
    ap.add_argument(
        "--assert-latency",
        action="store_true",
        help="fail (exit 2) unless the per-window latency section carries "
        "enough eligible entries with monotone percentile ladders",
    )
    ap.add_argument(
        "--latency-family",
        default="total_ns",
        help="substring filter over latency histogram names "
        "(default 'total_ns': end-to-end sojourn)",
    )
    ap.add_argument(
        "--min-window-count",
        type=int,
        default=50,
        help="latency entries with fewer samples than this are skipped "
        "(default 50)",
    )
    ap.add_argument(
        "--max-p99-ns",
        type=float,
        default=None,
        help="no eligible latency window's p99 may exceed this (ns)",
    )
    ap.add_argument(
        "--min-latency-windows",
        type=int,
        default=1,
        help="minimum eligible latency window entries (default 1)",
    )
    ap.add_argument(
        "--family",
        default=None,
        help="restrict the per-vault family to prefixes starting with this "
        "(e.g. 'skiplist' to judge served ops instead of raw messages)",
    )
    args = ap.parse_args()
    windows = validate(load_windows(args.file), args.file)
    key = summarize(windows, args.file, args.min_window_ops, args.family)
    if args.assert_hot_vault:
        assert_hot_vault(windows, vault_families(windows), key,
                         args.threshold, args.expect_vault,
                         args.min_window_ops)
    if args.assert_rebalance_settles:
        assert_rebalance_settles(windows, vault_families(windows), key,
                                 args.threshold, args.settle_threshold,
                                 args.min_window_ops)
    if args.assert_latency:
        assert_latency(windows, args.latency_family, args.min_window_count,
                       args.max_p99_ns, args.min_latency_windows)


if __name__ == "__main__":
    main()
