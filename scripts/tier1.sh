#!/usr/bin/env bash
# Tier-1 verification (ROADMAP.md): standard build + full ctest, then the
# runtime message-path tests again under ThreadSanitizer (the mailbox drain /
# response pipelining code is exactly the kind of lock-free code TSan exists
# for), and the reclamation seam under ASan+LSan (a reclamation bug is either
# a use-after-free or a leak — exactly what that pair detects).
# Usage: scripts/tier1.sh [--skip-tsan] [--skip-asan]
set -euo pipefail
cd "$(dirname "$0")/.."

skip_tsan=0
skip_asan=0
for arg in "$@"; do
  [[ "$arg" == "--skip-tsan" ]] && skip_tsan=1
  [[ "$arg" == "--skip-asan" ]] && skip_asan=1
done

echo "== tier-1: standard build + ctest =="
cmake -B build -S . > /dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j)

# Opt-in: a longer schedule-exploration sweep of the segment hand-off and
# migration protocols (docs/TESTING.md Section 5). CI's schedule-explore job
# runs the full 1000-seed version.
if [[ "${PIMDS_SCHEDULE_EXPLORE:-0}" == 1 ]]; then
  echo "== tier-1: schedule-exploration sweep (PIMDS_SCHEDULE_EXPLORE=1) =="
  PIMDS_EXPLORE_SEEDS="${PIMDS_EXPLORE_SEEDS:-200}" \
    ./build/tests/test_schedule_explore
fi

echo "== tier-1: telemetry smoke (Zipf hot vault through the sampler) =="
# A skewed table2 run with the sampler on: validate the JSONL stream, the
# flight-recorder dump, and the bench JSON's telemetry section, then assert
# the acceptance criterion — the theta=0.99 run must surface vault 0 as hot
# in the windowed per-vault counters.
telemetry_dir="$(mktemp -d)"
PIMDS_FLIGHT_DUMP="$telemetry_dir/flight.json" ./build/bench/table2_skiplists \
  --skew 0.99 --json "$telemetry_dir/table2.json" \
  --telemetry "$telemetry_dir/table2.telemetry.jsonl" \
  --telemetry-interval-ms 25 > /dev/null
python3 scripts/telemetry_report.py "$telemetry_dir/table2.telemetry.jsonl" \
  --assert-hot-vault --expect-vault 0
python3 scripts/telemetry_report.py "$telemetry_dir/flight.json"
python3 scripts/trace_report.py --check-bench "$telemetry_dir/table2.json"
rm -rf "$telemetry_dir"
echo "telemetry-smoke: OK"

echo "== tier-1: active-rebalance smoke (closed loop must settle) =="
# The INVERTED assertion: the real-thread ablation with --active lets the
# AutoRebalancer drive migrations itself; the telemetry stream must show
# the Zipf hot spot early (peak imbalance >= 2.5 on served ops), at least
# one triggered migration, and a settled final third (every eligible
# window < 2.0). The --family filter judges skiplist.vault<k>.ops — the
# runtime message counters also carry migration streams and fat batches.
active_dir="$(mktemp -d)"
./build/bench/ablation_rebalance --active \
  --json "$active_dir/active.json" \
  --telemetry "$active_dir/active.telemetry.jsonl" \
  --telemetry-interval-ms 100 > /dev/null
python3 scripts/telemetry_report.py "$active_dir/active.telemetry.jsonl" \
  --assert-rebalance-settles --family skiplist \
  --threshold 2.5 --settle-threshold 2.0 --min-window-ops 200
python3 scripts/trace_report.py --check-bench "$active_dir/active.json"
rm -rf "$active_dir"
echo "active-rebalance-smoke: OK"

echo "== tier-1: latency-smoke (open-loop sweep, CO-free recorder, M/D/1) =="
# Open-loop tail-latency acceptance: two full queue sweeps at the baseline
# configuration (best-of-2, same shape perf_gate expects), then
#   * telemetry_report --assert-latency: every window's interpolated
#     percentile ladder must be monotone and enough windows must carry the
#     end-to-end sojourn family;
#   * trace_report --check-bench: the pimds.bench.v2 latency blocks and
#     conformance.latency rows must validate;
#   * perf_gate --only openloop_latency: the virtual-time sim rows must sit
#     inside the M/D/1 divergence bands, the below-knee gated p99s must not
#     regress past the committed baseline's band, and the 1.1x row must
#     still show the saturation signature.
latency_dir="$(mktemp -d)"
mkdir -p "$latency_dir/run1" "$latency_dir/run2"
for run in run1 run2; do
  ./build/bench/openloop_latency --structure queue \
    --json "$latency_dir/$run/BENCH_openloop_latency.json" \
    --telemetry "$latency_dir/$run/openloop.telemetry.jsonl" \
    --telemetry-interval-ms 50 > /dev/null
done
python3 scripts/telemetry_report.py \
  "$latency_dir/run1/openloop.telemetry.jsonl" \
  --assert-latency --latency-family total_ns --min-window-count 50
python3 scripts/trace_report.py --check-bench \
  "$latency_dir/run1/BENCH_openloop_latency.json"
python3 scripts/perf_gate.py --baseline-dir . \
  --fresh-dir "$latency_dir/run1" --fresh-dir "$latency_dir/run2" \
  --only openloop_latency
rm -rf "$latency_dir"
echo "latency-smoke: OK"

echo "== tier-1: -DPIMDS_OBS=OFF configuration =="
# Compiling test_obs in this configuration checks the layout static
# asserts (FatEntry must drop to 32 bytes and Message to 112 with the
# per-op trace context compiled out); the filtered run plus a bench smoke
# checks the disabled mode end to end. The full test_obs suite is NOT expected to
# pass here — most of it tests the very layer this build removes.
cmake -B build-noobs -S . -DPIMDS_OBS=OFF > /dev/null
cmake --build build-noobs -j --target test_obs ablation_batch_drain
./build-noobs/tests/test_obs --gtest_filter='Message.*:DisabledMode.*'
./build-noobs/bench/ablation_batch_drain --threads 4 --ops 40 > /dev/null
echo "obs-off: OK"

if [[ "$skip_tsan" == 0 ]]; then
  echo "== tier-1: runtime tests under ThreadSanitizer =="
  cmake --preset tsan > /dev/null
  cmake --build build-tsan -j --target \
    test_runtime test_mailbox_batch test_spsc_ring test_obs test_telemetry \
    test_sentinel_refresh test_extensions
  # No suppressions: the runtime message path must be genuinely race-free.
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_runtime
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_mailbox_batch
  # The per-sender SPSC lanes and the multi-lane drain sweep are new
  # lock-free code; MultiLaneDrainStress is the dedicated TSan target.
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_spsc_ring
  # The metrics/trace layer is all relaxed atomics + sharding; it must be
  # race-free too (counter sharding test hammers it from 8 threads).
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_obs
  # Telemetry plane: snapshot-merge vs external-registration churn, the
  # sampler thread, and the LoadMap's single-writer sketch under readers.
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_telemetry
  # Live migration races: client threads vs the Section 4.2.1 hand-over,
  # including the ACTIVE AutoRebalancer choosing splits itself, and the
  # adaptive-combining flips racing the send path.
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_sentinel_refresh
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_extensions
  # Reclamation seam: the protect/retire race and the policy-parameterized
  # baseline matrix are the TSan targets for the HP publish/scan fences.
  cmake --build build-tsan -j --target test_reclaim test_baselines \
    test_mpmc_ebr soak_reclamation
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_reclaim
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_baselines
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_mpmc_ebr
  TSAN_OPTIONS="halt_on_error=1" \
    ./build-tsan/tests/soak_reclamation --seconds 2 --policy both
fi

if [[ "$skip_asan" == 0 ]]; then
  echo "== tier-1: reclamation seam under ASan + LSan =="
  cmake --preset asan > /dev/null
  cmake --build build-asan -j --target test_reclaim test_baselines \
    test_mpmc_ebr soak_reclamation
  # LSan runs at exit by default under ASan: any node a policy drops on the
  # floor (or frees twice) fails here even if no test assertion notices.
  ASAN_OPTIONS="halt_on_error=1" ./build-asan/tests/test_reclaim
  ASAN_OPTIONS="halt_on_error=1" ./build-asan/tests/test_baselines
  ASAN_OPTIONS="halt_on_error=1" ./build-asan/tests/test_mpmc_ebr
  # Cap the malloc quarantine: its default (256 MB) parks freed churn nodes
  # in RSS and would trip the soak's leak ceiling without any actual leak.
  ASAN_OPTIONS="halt_on_error=1:quarantine_size_mb=32" \
    ./build-asan/tests/soak_reclamation --seconds 2 --policy both
fi

echo "tier-1: OK"
