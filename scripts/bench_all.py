#!/usr/bin/env python3
"""Run the curated benchmark set and write schema-stable BENCH_*.json files.

Stdlib-only orchestrator behind the committed perf baselines:

    scripts/bench_all.py --build-dir build --out-dir .

runs each bench in BENCHES with --json, names the output BENCH_<bench>.json
(<bench> is the name the binary reports in its JSON, e.g. the
ablation_batch_drain binary reports "batch_drain"), and validates every
file with trace_report.py --check-bench before returning. The sim-backed
benches (sec52, fig4, table1, table2) are deterministic in virtual time, so
their JSON is bit-stable across hosts up to float formatting; batch_drain
and openloop_latency measure real threads (openloop_latency's sim
conformance section is virtual-time deterministic). All files carry the
pimds.bench.v2 schema: records may attach a "latency" percentile object
and conformance may carry a "latency" row list, both validated by
trace_report.py --check-bench. scripts/perf_gate.py compares a fresh
--out-dir against the committed baselines.

Exit codes: 0 ok, 1 a bench failed to run or produced invalid JSON.
"""

import argparse
import pathlib
import subprocess
import sys

# (binary, json name it reports, extra args, telemetry). batch_drain runs
# at 18 threads: enough concurrency to keep both PIM cores saturated (the
# gate holds its internal batched-vs-seed speedup plus the batched run's
# attribution shares, all host-speed independent), while 600 ops/thread
# keeps the speedup distribution tight enough for best-of-2 gating. The
# 4 us drain gather window holds sender-side queueing under the gate's
# mailbox_queue ceiling (CPU-side combining already lands fat messages,
# so the longer Lpim auto-window only adds queueing delay). These flags
# match the binary's own defaults; they are spelled out here so the gated
# configuration is visible where CI reads it.
# batch_drain also runs with the 100 ms telemetry sampler ON: the gate's
# speedup is an internal same-process ratio (batched vs seed, both legs
# sampled), and the sampler's metered self-cost is ~0.5% of wall, so the
# gated numbers carry a windowed time-series for free and the gate keeps
# proving the telemetry plane does not perturb the hot path.
# batch_drain runs FIRST: it is the only bench measuring real threads, so
# it gets the machine before the sim benches churn the caches and the
# scheduler (the sim benches run in virtual time and do not care).
BENCHES = [
    (
        "ablation_batch_drain",
        "batch_drain",
        ["--threads", "18", "--ops", "600", "--gather-ns", "4000"],
        True,
    ),
    # Open-loop tail-latency sweep: real threads again (injector clocks are
    # wall time), so it runs right after batch_drain while the machine is
    # quiet. Binary defaults (400 ms/leg, 16 injectors, Lpim 10 us) are the
    # gated configuration; the committed baseline carries the below-knee
    # gated points that perf_gate's latency_bounds policy bands, plus the
    # virtual-time sim conformance rows that carry the tight M/D/1 gates.
    # Telemetry ON so the baseline also exercises the windowed latency block.
    ("openloop_latency", "openloop_latency", [], True),
    ("sec52_fifo_queues", "sec52_fifo_queues", [], False),
    ("fig4_skiplists", "fig4_skiplists", [], False),
    ("table1_linked_lists", "table1_linked_lists", [], False),
    ("table2_skiplists", "table2_skiplists", [], False),
    # The same bench again under Zipf skew: the extra PIM row plus the
    # uniform records land in their own baseline file, so the skewed
    # workload is held by the gate independently of the paper tables.
    ("table2_skiplists", "table2_skiplists_skew", ["--skew", "0.99"], False),
    # Active-rebalancer acceptance scenario (virtual time): carries the
    # imbalance_cut / active_vs_uniform_tput notes perf_gate.py floors.
    ("ablation_rebalance_sim", "ablation_rebalance_sim", [], False),
]


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build", help="CMake build tree")
    ap.add_argument("--out-dir", default=".", help="where BENCH_*.json go")
    ap.add_argument(
        "--filter",
        default="",
        help="only run benches whose binary name contains this substring",
    )
    args = ap.parse_args()

    build = pathlib.Path(args.build_dir)
    out = pathlib.Path(args.out_dir)
    out.mkdir(parents=True, exist_ok=True)
    checker = pathlib.Path(__file__).with_name("trace_report.py")

    failures = 0
    for binary, json_name, extra, telemetry in BENCHES:
        if args.filter and args.filter not in binary:
            continue
        exe = build / "bench" / binary
        dest = out / f"BENCH_{json_name}.json"
        cmd = [str(exe), *extra, "--json", str(dest)]
        jsonl = out / f"BENCH_{json_name}.telemetry.jsonl"
        if telemetry:
            cmd += ["--telemetry", str(jsonl), "--telemetry-interval-ms", "100"]
        print(f"bench_all: running {' '.join(cmd)}", flush=True)
        try:
            subprocess.run(
                cmd, check=True, stdout=subprocess.DEVNULL, timeout=1800
            )
        except (subprocess.SubprocessError, OSError) as e:
            print(f"bench_all: {binary} FAILED: {e}", file=sys.stderr)
            failures += 1
            continue
        check = subprocess.run(
            [sys.executable, str(checker), "--check-bench", str(dest)]
        )
        if check.returncode != 0:
            print(f"bench_all: {dest} failed validation", file=sys.stderr)
            failures += 1
        if telemetry:
            tcheck = subprocess.run(
                [
                    sys.executable,
                    str(checker.with_name("telemetry_report.py")),
                    str(jsonl),
                ]
            )
            if tcheck.returncode != 0:
                print(f"bench_all: {jsonl} failed validation", file=sys.stderr)
                failures += 1
    if failures:
        print(f"bench_all: {failures} bench(es) failed", file=sys.stderr)
        return 1
    print(f"bench_all: OK, outputs in {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
