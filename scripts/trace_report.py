#!/usr/bin/env python3
"""Validate and summarize the observability exports.

Two modes, both stdlib-only:

  trace_report.py TRACE.json [--require-events a,b,c] [--attribution]
      Validate a Chrome trace_event file produced by --trace (well-formed
      JSON, required top-level keys, every event carries ph/name/ts) and
      print a per-(process, track) summary: event counts by name, span time
      by name, and the observed batch-size distribution for drain_batch
      spans. Complete ("X") spans on each track must nest properly -- a
      span that PARTIALLY overlaps another on the same track means the
      emitter's begin/end bookkeeping is broken, and the report exits 2.
      --require-events fails (exit 2) unless every named event type
      appears at least once -- CI uses this to pin the acceptance events
      (newEnqSeg, newDeqSeg, drain_batch). --attribution additionally
      prints the per-phase latency attribution recoverable from the spans
      alone (total span time by name per process, plus the op-span /
      req_dispatch causal-correlation coverage).

  trace_report.py --check-bench BENCH.json
      Validate a bench --json file: well-formed, has a "records" list with
      {name, ops_per_sec} rows, the schema-stable "conformance" section
      ({"rows": [{name, predicted_ops_per_sec, measured_ops_per_sec,
      divergence_pct}]}) and "attribution" object, and -- when a "metrics"
      section is present -- that histograms carry count/p50/p99/p999.
      When the optional "telemetry" section is present (runs with
      --telemetry <file>), it must be {"path": str, "interval_ms": num > 0,
      "samples": int >= 0}. Exit 2 on any violation.

Exit codes: 0 ok, 1 usage/IO error, 2 validation failure.
"""

import argparse
import json
import sys
from collections import defaultdict


def fail(msg):
    print(f"trace_report: FAIL: {msg}", file=sys.stderr)
    sys.exit(2)


def load_json(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except OSError as e:
        print(f"trace_report: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(1)
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON: {e}")


def check_latency_block(lat, where):
    """Validate one record-level "latency" percentile object (pimds.bench.v2).

    Percentile ladder must be present, numeric, and monotone non-decreasing
    p50 <= p90 <= p99 <= p999 <= max; the model fields (md1_*/mm1_*) are
    optional because off-knee and deterministic-arrival rows omit them.
    """
    if not isinstance(lat, dict):
        fail(f"{where}: latency must be an object")
    for key in ("schedule", "rate_frac", "ops", "rho", "mean_ns",
                "p50_ns", "p90_ns", "p99_ns", "p999_ns", "max_ns", "gated"):
        if key not in lat:
            fail(f"{where}: latency missing {key!r}")
    ladder = [lat["p50_ns"], lat["p90_ns"], lat["p99_ns"],
              lat["p999_ns"], lat["max_ns"]]
    for v in ladder:
        if not isinstance(v, (int, float)) or isinstance(v, bool):
            fail(f"{where}: latency percentile is not numeric")
    # The ladder is serialized at 6 significant digits, so equal adjacent
    # quantiles can print up to ~1e-5 apart; only violations past that
    # rounding are real.
    for lo, hi in zip(ladder, ladder[1:]):
        if lo > hi * (1 + 1e-5):
            fail(f"{where}: latency percentile ladder not monotone: {ladder}")
    if not isinstance(lat["gated"], bool):
        fail(f'{where}: latency "gated" must be a bool')


def check_bench(path):
    doc = load_json(path)
    if not isinstance(doc, dict):
        fail("bench JSON top level must be an object")
    if "bench" not in doc:
        fail('bench JSON missing "bench" name field')
    schema = doc.get("schema")
    if schema is not None and schema != "pimds.bench.v2":
        fail(f'unknown bench schema {schema!r} (expected "pimds.bench.v2")')
    records = doc.get("records")
    if not isinstance(records, list) or not records:
        fail('bench JSON missing a non-empty "records" list')
    n_latency = 0
    for i, rec in enumerate(records):
        if not isinstance(rec, dict):
            fail(f"records[{i}] is not an object")
        if "name" not in rec:
            fail(f"records[{i}] has no name")
        if "ops_per_sec" not in rec:
            fail(f"records[{i}] ({rec.get('name')}) has no ops_per_sec")
        if not isinstance(rec["ops_per_sec"], (int, float)):
            fail(f"records[{i}] ops_per_sec is not numeric")
        if "latency" in rec:
            n_latency += 1
            check_latency_block(rec["latency"], f"records[{i}] ({rec['name']})")
    conformance = doc.get("conformance")
    if not isinstance(conformance, dict) or "rows" not in conformance:
        fail('bench JSON missing the "conformance" section with "rows"')
    if not isinstance(conformance["rows"], list):
        fail('"conformance.rows" must be a list')
    for i, row in enumerate(conformance["rows"]):
        if not isinstance(row, dict):
            fail(f"conformance.rows[{i}] is not an object")
        for key in (
            "name",
            "predicted_ops_per_sec",
            "measured_ops_per_sec",
            "divergence_pct",
        ):
            if key not in row:
                fail(f"conformance.rows[{i}] missing {key!r}")
    lat_rows = conformance.get("latency", [])
    if not isinstance(lat_rows, list):
        fail('"conformance.latency" must be a list when present')
    for i, row in enumerate(lat_rows):
        if not isinstance(row, dict):
            fail(f"conformance.latency[{i}] is not an object")
        for key in (
            "name",
            "rho",
            "predicted_mean_ns",
            "measured_mean_ns",
            "mean_divergence_pct",
            "predicted_p99_ns",
            "measured_p99_ns",
            "p99_divergence_pct",
        ):
            if key not in row:
                fail(f"conformance.latency[{i}] missing {key!r}")
            if key != "name" and (
                not isinstance(row[key], (int, float))
                or isinstance(row[key], bool)
            ):
                fail(f"conformance.latency[{i}] {key!r} is not numeric")
    if not isinstance(doc.get("attribution"), dict):
        fail('bench JSON missing the "attribution" object')
    for domain, a in doc["attribution"].items():
        for key in ("ops", "coverage_pct", "phases"):
            if key not in a:
                fail(f'attribution "{domain}" missing {key!r}')
    metrics = doc.get("metrics")
    n_hist = 0
    if metrics is not None:
        if not isinstance(metrics, dict):
            fail('"metrics" must be an object')
        for section in ("counters", "gauges", "derived", "histograms"):
            if section in metrics and not isinstance(metrics[section], dict):
                fail(f'metrics "{section}" must be an object')
        for name, h in metrics.get("histograms", {}).items():
            n_hist += 1
            for key in ("count", "mean", "p50", "p99", "p999", "max"):
                if key not in h:
                    fail(f'histogram "{name}" missing "{key}"')
    telemetry = doc.get("telemetry")
    if telemetry is not None:
        if not isinstance(telemetry, dict):
            fail('"telemetry" must be an object')
        if not isinstance(telemetry.get("path"), str) or not telemetry["path"]:
            fail('telemetry section missing a non-empty string "path"')
        interval = telemetry.get("interval_ms")
        if (
            not isinstance(interval, (int, float))
            or isinstance(interval, bool)
            or interval <= 0
        ):
            fail('telemetry "interval_ms" must be a positive number')
        samples = telemetry.get("samples")
        if not isinstance(samples, int) or isinstance(samples, bool) or samples < 0:
            fail('telemetry "samples" must be a non-negative integer')
    print(
        f"{path}: OK bench={doc['bench']} records={len(records)} "
        f"latency_records={n_latency} "
        f"conformance_rows={len(conformance['rows'])} "
        f"conformance_latency_rows={len(lat_rows)} "
        f"attribution_domains={len(doc['attribution'])} "
        f"metrics={'yes' if metrics is not None else 'no'} "
        f"histograms={n_hist} "
        f"telemetry={'yes' if telemetry is not None else 'no'}"
    )


def check_nesting(spans_by_track):
    """Complete spans on one track must be properly nested.

    Sorted by (ts, -dur), a well-formed track behaves like balanced
    brackets: each span either starts after every open ancestor has ended
    (pop them) or lies fully inside the innermost open one. A span that
    straddles an ancestor's end is a begin/end bookkeeping bug in the
    emitter. The epsilon absorbs microsecond rounding in the export.
    """
    eps = 0.011
    for (pid, tid), spans in sorted(spans_by_track.items()):
        spans.sort(key=lambda s: (s[0], -s[1]))
        stack = []  # (end_ts, name) of open ancestors
        for ts, dur, name in spans:
            end = ts + dur
            while stack and ts >= stack[-1][0] - eps:
                stack.pop()
            if stack and end > stack[-1][0] + eps:
                fail(
                    f"unbalanced span nesting on track ({pid},{tid}): "
                    f'"{name}" [{ts:.3f}, {end:.3f}]us straddles the end of '
                    f'enclosing "{stack[-1][1]}" ({stack[-1][0]:.3f}us)'
                )
            stack.append((end, name))


def print_attribution(events):
    """Per-phase attribution recoverable from the spans alone."""
    span_total = defaultdict(lambda: [0, 0.0])  # name -> [count, dur_us]
    op_reqs = set()
    dispatch_reqs = set()
    for ev in events:
        if not isinstance(ev, dict):
            continue
        name = ev.get("name")
        args = ev.get("args", {})
        if ev.get("ph") == "X":
            slot = span_total[name]
            slot[0] += 1
            slot[1] += float(ev.get("dur", 0))
        if name == "op" and "req" in args:
            op_reqs.add(args["req"])
        if name == "req_dispatch" and "req" in args:
            dispatch_reqs.add(args["req"])
    print("attribution (from spans):")
    for name in sorted(span_total, key=lambda k: -span_total[k][1]):
        count, dur = span_total[name]
        mean = dur / count if count else 0.0
        print(f"  {name:<24} x{count:<8} total={dur:.1f}us mean={mean:.2f}us")
    if op_reqs:
        matched = len(op_reqs & dispatch_reqs)
        print(
            f"  causal correlation: {len(op_reqs)} op spans, "
            f"{len(dispatch_reqs)} req_dispatch instants, "
            f"{matched} matched ({100.0 * matched / len(op_reqs):.1f}%)"
        )


def check_trace(path, require_events, attribution=False):
    doc = load_json(path)
    if not isinstance(doc, dict):
        fail("trace top level must be an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail('trace missing "traceEvents" list')

    proc_names = {}
    track_names = {}
    # (pid, tid) -> name -> [count, total_dur_us]
    tracks = defaultdict(lambda: defaultdict(lambda: [0, 0.0]))
    spans_by_track = defaultdict(list)  # (pid, tid) -> [(ts, dur, name)]
    drain_sizes = []
    seen_names = set()

    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"traceEvents[{i}] is not an object")
        for key in ("ph", "pid", "tid"):
            if key not in ev:
                fail(f"traceEvents[{i}] missing {key!r}")
        ph = ev["ph"]
        if ph == "M":
            args = ev.get("args", {})
            if ev.get("name") == "process_name":
                proc_names[ev["pid"]] = args.get("name", "?")
            elif ev.get("name") == "thread_name":
                track_names[(ev["pid"], ev["tid"])] = args.get("name", "?")
            continue
        if "name" not in ev or "ts" not in ev:
            fail(f"traceEvents[{i}] ({ph}) missing name/ts")
        if ph == "X" and "dur" not in ev:
            fail(f"traceEvents[{i}] is a complete event with no dur")
        name = ev["name"]
        seen_names.add(name)
        slot = tracks[(ev["pid"], ev["tid"])][name]
        slot[0] += 1
        if ph == "X":
            slot[1] += float(ev["dur"])
            spans_by_track[(ev["pid"], ev["tid"])].append(
                (float(ev["ts"]), float(ev["dur"]), name)
            )
        if name == "drain_batch":
            n = ev.get("args", {}).get("n")
            if isinstance(n, (int, float)):
                drain_sizes.append(n)

    n_real = sum(c for per in tracks.values() for c, _ in per.values())
    print(f"{path}: OK {n_real} events on {len(tracks)} tracks")
    for (pid, tid) in sorted(tracks):
        pname = proc_names.get(pid, f"pid{pid}")
        tname = track_names.get((pid, tid), f"tid{tid}")
        print(f"  [{pname}/{tname}]")
        per = tracks[(pid, tid)]
        for name in sorted(per, key=lambda k: -per[k][0]):
            count, dur = per[name]
            extra = f"  span_total={dur:.1f}us" if dur > 0 else ""
            print(f"    {name:<24} x{count}{extra}")
    if drain_sizes:
        drain_sizes.sort()
        mean = sum(drain_sizes) / len(drain_sizes)
        p50 = drain_sizes[len(drain_sizes) // 2]
        print(
            f"  drain_batch sizes: n={len(drain_sizes)} mean={mean:.2f} "
            f"p50={p50:g} max={drain_sizes[-1]:g}"
        )

    check_nesting(spans_by_track)
    if attribution:
        print_attribution(events)

    missing = [e for e in require_events if e not in seen_names]
    if missing:
        fail(f"required event types never appear: {', '.join(missing)}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("file", help="trace JSON (or bench JSON with --check-bench)")
    ap.add_argument(
        "--check-bench",
        action="store_true",
        help="validate a bench --json file instead of a trace",
    )
    ap.add_argument(
        "--require-events",
        default="",
        help="comma-separated event names that must appear in the trace",
    )
    ap.add_argument(
        "--attribution",
        action="store_true",
        help="print per-phase span totals and causal-correlation coverage",
    )
    args = ap.parse_args()
    if args.check_bench:
        check_bench(args.file)
    else:
        require = [e for e in args.require_events.split(",") if e]
        check_trace(args.file, require, attribution=args.attribution)


if __name__ == "__main__":
    main()
