#!/usr/bin/env bash
# ctest wrapper: trace_report.py must accept a real trace (including the
# span-nesting validation and --attribution summary) and must REJECT a
# hand-built trace whose spans partially overlap on one track.
#
# Usage: check_trace_report.sh <build_dir> <scripts_dir>
set -u

BUILD_DIR=${1:?usage: check_trace_report.sh <build_dir> <scripts_dir>}
SCRIPTS_DIR=${2:?usage: check_trace_report.sh <build_dir> <scripts_dir>}
PY=${PYTHON:-python3}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

# 1. A real trace from the runtime passes, with attribution output.
"$BUILD_DIR/bench/ablation_batch_drain" --threads 4 --ops 40 \
    --trace "$TMP/real.trace.json" > /dev/null || exit 1
"$PY" "$SCRIPTS_DIR/trace_report.py" "$TMP/real.trace.json" --attribution \
    --require-events op,vault_service,drain_batch,req_dispatch || exit 1

# 2. Properly nested spans pass.
cat > "$TMP/nested.trace.json" <<'EOF'
{"traceEvents": [
  {"ph": "X", "pid": 0, "tid": 1, "name": "outer", "ts": 0.0, "dur": 100.0},
  {"ph": "X", "pid": 0, "tid": 1, "name": "inner", "ts": 10.0, "dur": 50.0},
  {"ph": "X", "pid": 0, "tid": 1, "name": "later", "ts": 120.0, "dur": 5.0}
]}
EOF
"$PY" "$SCRIPTS_DIR/trace_report.py" "$TMP/nested.trace.json" || exit 1

# 3. A partially overlapping span pair must be rejected (exit 2): "b"
#    starts inside "a" but ends after it.
cat > "$TMP/overlap.trace.json" <<'EOF'
{"traceEvents": [
  {"ph": "X", "pid": 0, "tid": 1, "name": "a", "ts": 0.0, "dur": 100.0},
  {"ph": "X", "pid": 0, "tid": 1, "name": "b", "ts": 50.0, "dur": 100.0}
]}
EOF
if "$PY" "$SCRIPTS_DIR/trace_report.py" "$TMP/overlap.trace.json" \
    > /dev/null 2>&1; then
  echo "check_trace_report: overlapping spans were NOT rejected" >&2
  exit 1
fi

# 4. A bench JSON without the conformance section must be rejected.
cat > "$TMP/bad_bench.json" <<'EOF'
{"bench": "x", "records": [{"name": "r", "params": {}, "ops_per_sec": 1.0}]}
EOF
if "$PY" "$SCRIPTS_DIR/trace_report.py" --check-bench "$TMP/bad_bench.json" \
    > /dev/null 2>&1; then
  echo "check_trace_report: bench JSON without conformance was accepted" >&2
  exit 1
fi

echo "check_trace_report: OK"
