#!/usr/bin/env python3
"""Noise-aware perf regression gate over BENCH_*.json baselines.

    scripts/perf_gate.py --baseline-dir . --fresh-dir /tmp/run1 \
        [--fresh-dir /tmp/run2 ...]

Compares freshly produced bench JSON against the committed baselines. To
stay non-flaky in CI the gate is built on three ideas:

  * Paired comparison, best-of-N: each --fresh-dir is one full run;
    per record the gate takes the BEST fresh value across runs, so a
    single noisy run cannot fail the gate alone.
  * Per-bench policy keyed on how the number was produced. The simulator
    benches run in virtual time -- their throughput is deterministic up to
    float formatting, so a tight relative tolerance is safe. The
    real-thread bench (batch_drain) is gated only on its *internal*
    speedup ratio (batched vs seed measured in the same process), which
    divides out host speed; its absolute ops/sec are never compared.
  * Attribution coverage: for benches with a phase-attribution section the
    per-phase sums must add up to the independently measured end-to-end
    total within the configured band -- a silent accounting regression
    fails even when throughput looks fine.

Exit codes: 0 pass, 1 usage/IO error, 2 regression or invalid input.
"""

import argparse
import json
import pathlib
import sys

# bench name -> policy. rel_tol gates per-record ops_per_sec of the fresh
# best-of-N against the baseline (two-sided: a silent 2x speedup on a
# virtual-time bench means the simulation changed, which also needs a
# baseline refresh). coverage bands gate attribution coverage_pct.
GATES = {
    "sec52_fifo_queues": {"rel_tol": 0.10, "coverage": ("sim", 90.0, 110.0)},
    "fig4_skiplists": {"rel_tol": 0.10, "coverage": ("sim", 90.0, 110.0)},
    "table1_linked_lists": {"rel_tol": 0.10},
    "table2_skiplists": {"rel_tol": 0.10, "coverage": ("sim", 90.0, 110.0)},
    # Zipf-skewed twin of table2 (--skew 0.99): holds the skewed-workload
    # throughput the rebalancing work is judged against.
    "table2_skiplists_skew": {"rel_tol": 0.10, "coverage": ("sim", 90.0, 110.0)},
    # Active-rebalancer acceptance scenario (virtual time, deterministic):
    # rel_tol holds the per-record throughput; notes_min holds the issue's
    # bar -- the active policy must cut the final-third peak vault imbalance
    # >= 2x vs observe-only AND keep throughput >= 95% of the uniform-key
    # baseline (and lose no keys doing it).
    "ablation_rebalance_sim": {
        "rel_tol": 0.10,
        "notes_min": {
            "imbalance_cut": 2.0,
            "active_vs_uniform_tput": 0.95,
            "active_size_consistent": 1.0,
        },
    },
    # Real threads: hold only the within-run speedup of the batched path
    # over the seed path (>= min_speedup) -- host-speed independent. The
    # runtime attribution section is additionally gated on coverage (the
    # phase sums must explain >= 90% of measured wall time) and on the
    # mailbox_queue share (the lane transport must keep sender-side queueing
    # below 17% of attributed time; the shared-ring seed sat at ~34%).
    "batch_drain": {
        "min_speedup": 2.0,
        "coverage": ("runtime", 90.0, 130.0),
        "max_phase_share": ("runtime", "mailbox_queue", 17.0),
    },
    # Open-loop tail-latency sweep (coordinated-omission-free). Three-part
    # policy, matched to how each number is produced:
    #   * sim_*_div_pct: the "openloop.sim.*" conformance.latency rows run
    #     in VIRTUAL time (deterministic), so the measured-vs-M/D/1
    #     divergence bounds hold exactly across hosts and runs.
    #   * p99_regression_pct: the runtime rate points marked gated=true
    #     (well below the knee) must not regress their CO-free p99 beyond
    #     the band; best-of-N takes the MINIMUM fresh p99 so one noisy run
    #     cannot fail the gate. Regression-only (one-sided): latency
    #     improvements always pass. The band is WIDE (+100%) on purpose:
    #     on an oversubscribed host the below-knee tail is OS-scheduler
    #     delay with ~2x run-to-run spread (measured across 6 sweeps on a
    #     1-CPU box), so this check is a catastrophic-tail detector (a new
    #     lock or O(n) scan on the hot path shows up as 10x), not a
    #     precision instrument -- precision lives in the sim rows above.
    #   * Above the knee the absolute tail is host-noise; what must hold is
    #     the open-loop saturation signature -- positive injector backlog
    #     at 1.1x and a late share no lower than at 1.0x.
    "openloop_latency": {
        "latency_bounds": {
            "sim_mean_div_pct": 25.0,
            "sim_p99_div_pct": 35.0,
            "p99_regression_pct": 100.0,
            "min_gated_points": 2,
        },
    },
}

failures = []


def problem(msg):
    print(f"perf_gate: FAIL: {msg}", file=sys.stderr)
    failures.append(msg)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except OSError as e:
        print(f"perf_gate: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(1)
    except json.JSONDecodeError as e:
        print(f"perf_gate: {path} invalid JSON: {e}", file=sys.stderr)
        sys.exit(2)


def records_by_name(doc):
    # Key on (name, params): some benches reuse a record name across
    # configs (e.g. table1 runs the same algorithms at two sizes).
    out = {}
    for r in doc.get("records", []):
        params = tuple(sorted(r.get("params", {}).items()))
        out[(r["name"], params)] = r["ops_per_sec"]
    return out


def latency_by_name(doc):
    # Record name -> attached "latency" object (pimds.bench.v2 sweeps).
    # Names are unique within the latency benches, so no params key needed.
    out = {}
    for r in doc.get("records", []):
        if isinstance(r.get("latency"), dict):
            out[r["name"]] = r["latency"]
    return out


def gate_latency_bounds(name, lb, baseline, fresh_docs):
    checked = 0

    # 1) Deterministic M/D/1 conformance (virtual time): every
    # openloop.sim.* row of at least one fresh run must sit within the
    # divergence bounds. Deterministic, so best-of-N == every-run here;
    # best-of-N keeps the shape uniform with the other checks.
    checked += 1
    best_bad = None
    saw_rows = False
    for doc in fresh_docs:
        rows = [
            r
            for r in doc.get("conformance", {}).get("latency", [])
            if str(r.get("name", "")).startswith("openloop.sim.")
        ]
        if not rows:
            continue
        saw_rows = True
        bad = [
            r
            for r in rows
            if abs(r.get("mean_divergence_pct", 1e9)) > lb["sim_mean_div_pct"]
            or abs(r.get("p99_divergence_pct", 1e9)) > lb["sim_p99_div_pct"]
        ]
        if not bad:
            best_bad = []
            break
        if best_bad is None or len(bad) < len(best_bad):
            best_bad = bad
    if not saw_rows:
        problem(f"{name}: no openloop.sim.* conformance.latency rows in any "
                "fresh run")
    elif best_bad:
        for r in best_bad:
            problem(
                f"{name}: sim M/D/1 divergence out of bounds at {r['name']}: "
                f"mean {r.get('mean_divergence_pct', 0.0):+.1f}% "
                f"(tol ±{lb['sim_mean_div_pct']:.0f}%), "
                f"p99 {r.get('p99_divergence_pct', 0.0):+.1f}% "
                f"(tol ±{lb['sim_p99_div_pct']:.0f}%)"
            )

    # 2) Below-knee p99 regression band on the gated runtime rate points.
    base_lat = latency_by_name(baseline)
    gated_names = sorted(n for n, l in base_lat.items() if l.get("gated"))
    matched = 0
    for n in gated_names:
        base_p99 = base_lat[n].get("p99_ns", 0.0)
        fresh = [
            latency_by_name(d).get(n, {}).get("p99_ns") for d in fresh_docs
        ]
        fresh = [v for v in fresh if isinstance(v, (int, float)) and v > 0]
        if not fresh:
            problem(f"{name}: gated point {n!r} missing from fresh runs")
            continue
        matched += 1
        if base_p99 <= 0:
            continue
        best = min(fresh)
        rel = (best - base_p99) / base_p99
        checked += 1
        if rel * 100.0 > lb["p99_regression_pct"]:
            problem(
                f"{name}: {n} CO-free p99 regressed {100 * rel:+.1f}% "
                f"(baseline {base_p99:.6g} ns, best fresh {best:.6g} ns, "
                f"tol +{lb['p99_regression_pct']:.0f}%)"
            )
    checked += 1
    if matched < lb["min_gated_points"]:
        problem(
            f"{name}: only {matched} gated rate point(s) matched between "
            f"baseline and fresh runs (need >= {lb['min_gated_points']})"
        )

    # 3) Open-loop saturation signature above the knee: at 1.1x capacity
    # the injectors must report positive schedule backlog and a late share
    # no lower than at 1.0x (within 5pp slack). A closed-loop bench can
    # never fail this -- it would just issue slower.
    checked += 1
    ok = False
    saw_pair = False
    for doc in fresh_docs:
        lat = latency_by_name(doc)
        hi, lo = lat.get("queue.rate1.10"), lat.get("queue.rate1.00")
        if not hi or not lo:
            continue
        saw_pair = True
        if (
            hi.get("backlog_ns", 0.0) > 0.0
            and hi.get("late_share_pct", 0.0)
            >= lo.get("late_share_pct", 100.0) - 5.0
        ):
            ok = True
            break
    if not saw_pair:
        problem(f"{name}: no queue.rate1.10/1.00 pair in any fresh run")
    elif not ok:
        problem(
            f"{name}: saturation signature missing at 1.1x capacity "
            "(expected positive backlog_ns and late share >= the 1.0x point)"
        )
    return checked


def gate_bench(name, policy, baseline, fresh_docs):
    base_recs = records_by_name(baseline)
    fresh_best = {}
    for doc in fresh_docs:
        for rec, val in records_by_name(doc).items():
            if rec not in fresh_best or val > fresh_best[rec]:
                fresh_best[rec] = val

    n_checked = 0
    if "rel_tol" in policy:
        tol = policy["rel_tol"]
        for key, base in sorted(base_recs.items()):
            label = key[0] + (f" {dict(key[1])}" if key[1] else "")
            if key not in fresh_best:
                problem(f"{name}: record {label!r} missing from fresh runs")
                continue
            val = fresh_best[key]
            if base <= 0:
                continue
            rel = (val - base) / base
            n_checked += 1
            if abs(rel) > tol:
                problem(
                    f"{name}: {label} moved {100 * rel:+.1f}% "
                    f"(baseline {base:.6g}, best fresh {val:.6g}, "
                    f"tol ±{100 * tol:.0f}%)"
                )

    if "min_speedup" in policy:
        best = max(
            (d.get("speedup", 0.0) for d in fresh_docs), default=0.0
        )
        n_checked += 1
        if best < policy["min_speedup"]:
            problem(
                f"{name}: speedup {best:.2f}x below the "
                f"{policy['min_speedup']:.2f}x floor"
            )

    if "notes_min" in policy:
        # Doc-level scalar notes (JsonReporter::note) with a hard floor.
        # Best-of-N like the speedup check: the note must clear its floor
        # in at least one fresh run.
        for note, floor in sorted(policy["notes_min"].items()):
            vals = [
                doc[note]
                for doc in fresh_docs
                if isinstance(doc.get(note), (int, float))
            ]
            n_checked += 1
            if not vals:
                problem(f"{name}: note {note!r} missing from every fresh run")
            elif max(vals) < floor:
                problem(
                    f"{name}: note {note} = {max(vals):.3f} "
                    f"(best of {len(vals)}) below the {floor:.2f} floor"
                )

    if "coverage" in policy:
        domain, lo, hi = policy["coverage"]
        covs = [
            doc["attribution"][domain].get("coverage_pct", 0.0)
            for doc in fresh_docs
            if domain in doc.get("attribution", {})
        ]
        n_checked += 1
        if not covs:
            problem(f"{name}: no {domain!r} attribution in any fresh run")
        elif not any(lo <= c <= hi for c in covs):
            # Best-of-N like the speedup check: one noisy run can't fail it.
            problem(
                f"{name}: {domain} attribution coverage "
                f"{max(covs):.1f}% (best of {len(covs)}) outside "
                f"[{lo:.0f}, {hi:.0f}]%"
            )

    if "latency_bounds" in policy:
        n_checked += gate_latency_bounds(
            name, policy["latency_bounds"], baseline, fresh_docs
        )

    if "max_phase_share" in policy:
        domain, phase, cap = policy["max_phase_share"]
        shares = []
        for doc in fresh_docs:
            ph = (
                doc.get("attribution", {})
                .get(domain, {})
                .get("phases", {})
                .get(phase)
            )
            if ph is not None:
                shares.append(ph.get("share_pct", 100.0))
        n_checked += 1
        if not shares:
            problem(f"{name}: no {domain}.{phase} share in any fresh run")
        elif min(shares) >= cap:
            problem(
                f"{name}: {domain} phase {phase!r} share "
                f"{min(shares):.1f}% (best of {len(shares)}) is at or "
                f"above the {cap:.0f}% ceiling"
            )

    print(f"perf_gate: {name}: {n_checked} checks, best-of-{len(fresh_docs)}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline-dir", default=".", help="committed BENCH_*.json")
    ap.add_argument(
        "--fresh-dir",
        action="append",
        required=True,
        help="directory with freshly produced BENCH_*.json (repeatable; "
        "best-of-N across all given directories)",
    )
    ap.add_argument(
        "--only",
        action="append",
        help="gate only this bench (repeatable; must name a known gate). "
        "For focused smoke runs, e.g. the tier-1 latency smoke.",
    )
    args = ap.parse_args()

    gates = GATES
    if args.only:
        unknown = [n for n in args.only if n not in GATES]
        if unknown:
            print(
                f"perf_gate: unknown --only bench(es): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(GATES))})",
                file=sys.stderr,
            )
            return 1
        gates = {n: GATES[n] for n in args.only}

    base_dir = pathlib.Path(args.baseline_dir)
    gated = 0
    for name, policy in gates.items():
        base_path = base_dir / f"BENCH_{name}.json"
        if not base_path.exists():
            problem(f"no committed baseline {base_path}")
            continue
        fresh_docs = []
        for d in args.fresh_dir:
            p = pathlib.Path(d) / f"BENCH_{name}.json"
            if p.exists():
                fresh_docs.append(load(p))
        if not fresh_docs:
            # A bench can be absent from a reduced fresh run (e.g. a
            # second best-of-N pass that only reruns the noisy bench) --
            # but absent from EVERY fresh dir means it never ran.
            problem(f"{name}: no fresh BENCH_{name}.json in any --fresh-dir")
            continue
        gate_bench(name, policy, load(base_path), fresh_docs)
        gated += 1

    if failures:
        print(
            f"perf_gate: FAIL ({len(failures)} problem(s) across "
            f"{gated} bench(es))",
            file=sys.stderr,
        )
        return 2
    print(f"perf_gate: PASS ({gated} bench(es))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
