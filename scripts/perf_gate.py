#!/usr/bin/env python3
"""Noise-aware perf regression gate over BENCH_*.json baselines.

    scripts/perf_gate.py --baseline-dir . --fresh-dir /tmp/run1 \
        [--fresh-dir /tmp/run2 ...]

Compares freshly produced bench JSON against the committed baselines. To
stay non-flaky in CI the gate is built on three ideas:

  * Paired comparison, best-of-N: each --fresh-dir is one full run;
    per record the gate takes the BEST fresh value across runs, so a
    single noisy run cannot fail the gate alone.
  * Per-bench policy keyed on how the number was produced. The simulator
    benches run in virtual time -- their throughput is deterministic up to
    float formatting, so a tight relative tolerance is safe. The
    real-thread bench (batch_drain) is gated only on its *internal*
    speedup ratio (batched vs seed measured in the same process), which
    divides out host speed; its absolute ops/sec are never compared.
  * Attribution coverage: for benches with a phase-attribution section the
    per-phase sums must add up to the independently measured end-to-end
    total within the configured band -- a silent accounting regression
    fails even when throughput looks fine.

Exit codes: 0 pass, 1 usage/IO error, 2 regression or invalid input.
"""

import argparse
import json
import pathlib
import sys

# bench name -> policy. rel_tol gates per-record ops_per_sec of the fresh
# best-of-N against the baseline (two-sided: a silent 2x speedup on a
# virtual-time bench means the simulation changed, which also needs a
# baseline refresh). coverage bands gate attribution coverage_pct.
GATES = {
    "sec52_fifo_queues": {"rel_tol": 0.10, "coverage": ("sim", 90.0, 110.0)},
    "fig4_skiplists": {"rel_tol": 0.10, "coverage": ("sim", 90.0, 110.0)},
    "table1_linked_lists": {"rel_tol": 0.10},
    "table2_skiplists": {"rel_tol": 0.10, "coverage": ("sim", 90.0, 110.0)},
    # Zipf-skewed twin of table2 (--skew 0.99): holds the skewed-workload
    # throughput the rebalancing work is judged against.
    "table2_skiplists_skew": {"rel_tol": 0.10, "coverage": ("sim", 90.0, 110.0)},
    # Active-rebalancer acceptance scenario (virtual time, deterministic):
    # rel_tol holds the per-record throughput; notes_min holds the issue's
    # bar -- the active policy must cut the final-third peak vault imbalance
    # >= 2x vs observe-only AND keep throughput >= 95% of the uniform-key
    # baseline (and lose no keys doing it).
    "ablation_rebalance_sim": {
        "rel_tol": 0.10,
        "notes_min": {
            "imbalance_cut": 2.0,
            "active_vs_uniform_tput": 0.95,
            "active_size_consistent": 1.0,
        },
    },
    # Real threads: hold only the within-run speedup of the batched path
    # over the seed path (>= min_speedup) -- host-speed independent. The
    # runtime attribution section is additionally gated on coverage (the
    # phase sums must explain >= 90% of measured wall time) and on the
    # mailbox_queue share (the lane transport must keep sender-side queueing
    # below 17% of attributed time; the shared-ring seed sat at ~34%).
    "batch_drain": {
        "min_speedup": 2.0,
        "coverage": ("runtime", 90.0, 130.0),
        "max_phase_share": ("runtime", "mailbox_queue", 17.0),
    },
}

failures = []


def problem(msg):
    print(f"perf_gate: FAIL: {msg}", file=sys.stderr)
    failures.append(msg)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except OSError as e:
        print(f"perf_gate: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(1)
    except json.JSONDecodeError as e:
        print(f"perf_gate: {path} invalid JSON: {e}", file=sys.stderr)
        sys.exit(2)


def records_by_name(doc):
    # Key on (name, params): some benches reuse a record name across
    # configs (e.g. table1 runs the same algorithms at two sizes).
    out = {}
    for r in doc.get("records", []):
        params = tuple(sorted(r.get("params", {}).items()))
        out[(r["name"], params)] = r["ops_per_sec"]
    return out


def gate_bench(name, policy, baseline, fresh_docs):
    base_recs = records_by_name(baseline)
    fresh_best = {}
    for doc in fresh_docs:
        for rec, val in records_by_name(doc).items():
            if rec not in fresh_best or val > fresh_best[rec]:
                fresh_best[rec] = val

    n_checked = 0
    if "rel_tol" in policy:
        tol = policy["rel_tol"]
        for key, base in sorted(base_recs.items()):
            label = key[0] + (f" {dict(key[1])}" if key[1] else "")
            if key not in fresh_best:
                problem(f"{name}: record {label!r} missing from fresh runs")
                continue
            val = fresh_best[key]
            if base <= 0:
                continue
            rel = (val - base) / base
            n_checked += 1
            if abs(rel) > tol:
                problem(
                    f"{name}: {label} moved {100 * rel:+.1f}% "
                    f"(baseline {base:.6g}, best fresh {val:.6g}, "
                    f"tol ±{100 * tol:.0f}%)"
                )

    if "min_speedup" in policy:
        best = max(
            (d.get("speedup", 0.0) for d in fresh_docs), default=0.0
        )
        n_checked += 1
        if best < policy["min_speedup"]:
            problem(
                f"{name}: speedup {best:.2f}x below the "
                f"{policy['min_speedup']:.2f}x floor"
            )

    if "notes_min" in policy:
        # Doc-level scalar notes (JsonReporter::note) with a hard floor.
        # Best-of-N like the speedup check: the note must clear its floor
        # in at least one fresh run.
        for note, floor in sorted(policy["notes_min"].items()):
            vals = [
                doc[note]
                for doc in fresh_docs
                if isinstance(doc.get(note), (int, float))
            ]
            n_checked += 1
            if not vals:
                problem(f"{name}: note {note!r} missing from every fresh run")
            elif max(vals) < floor:
                problem(
                    f"{name}: note {note} = {max(vals):.3f} "
                    f"(best of {len(vals)}) below the {floor:.2f} floor"
                )

    if "coverage" in policy:
        domain, lo, hi = policy["coverage"]
        covs = [
            doc["attribution"][domain].get("coverage_pct", 0.0)
            for doc in fresh_docs
            if domain in doc.get("attribution", {})
        ]
        n_checked += 1
        if not covs:
            problem(f"{name}: no {domain!r} attribution in any fresh run")
        elif not any(lo <= c <= hi for c in covs):
            # Best-of-N like the speedup check: one noisy run can't fail it.
            problem(
                f"{name}: {domain} attribution coverage "
                f"{max(covs):.1f}% (best of {len(covs)}) outside "
                f"[{lo:.0f}, {hi:.0f}]%"
            )

    if "max_phase_share" in policy:
        domain, phase, cap = policy["max_phase_share"]
        shares = []
        for doc in fresh_docs:
            ph = (
                doc.get("attribution", {})
                .get(domain, {})
                .get("phases", {})
                .get(phase)
            )
            if ph is not None:
                shares.append(ph.get("share_pct", 100.0))
        n_checked += 1
        if not shares:
            problem(f"{name}: no {domain}.{phase} share in any fresh run")
        elif min(shares) >= cap:
            problem(
                f"{name}: {domain} phase {phase!r} share "
                f"{min(shares):.1f}% (best of {len(shares)}) is at or "
                f"above the {cap:.0f}% ceiling"
            )

    print(f"perf_gate: {name}: {n_checked} checks, best-of-{len(fresh_docs)}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline-dir", default=".", help="committed BENCH_*.json")
    ap.add_argument(
        "--fresh-dir",
        action="append",
        required=True,
        help="directory with freshly produced BENCH_*.json (repeatable; "
        "best-of-N across all given directories)",
    )
    args = ap.parse_args()

    base_dir = pathlib.Path(args.baseline_dir)
    gated = 0
    for name, policy in GATES.items():
        base_path = base_dir / f"BENCH_{name}.json"
        if not base_path.exists():
            problem(f"no committed baseline {base_path}")
            continue
        fresh_docs = []
        for d in args.fresh_dir:
            p = pathlib.Path(d) / f"BENCH_{name}.json"
            if p.exists():
                fresh_docs.append(load(p))
        if not fresh_docs:
            # A bench can be absent from a reduced fresh run (e.g. a
            # second best-of-N pass that only reruns the noisy bench) --
            # but absent from EVERY fresh dir means it never ran.
            problem(f"{name}: no fresh BENCH_{name}.json in any --fresh-dir")
            continue
        gate_bench(name, policy, load(base_path), fresh_docs)
        gated += 1

    if failures:
        print(
            f"perf_gate: FAIL ({len(failures)} problem(s) across "
            f"{gated} bench(es))",
            file=sys.stderr,
        )
        return 2
    print(f"perf_gate: PASS ({gated} bench(es))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
