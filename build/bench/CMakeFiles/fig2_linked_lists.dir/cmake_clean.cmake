file(REMOVE_RECURSE
  "CMakeFiles/fig2_linked_lists.dir/fig2_linked_lists.cpp.o"
  "CMakeFiles/fig2_linked_lists.dir/fig2_linked_lists.cpp.o.d"
  "fig2_linked_lists"
  "fig2_linked_lists.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_linked_lists.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
