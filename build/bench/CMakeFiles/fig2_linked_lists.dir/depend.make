# Empty dependencies file for fig2_linked_lists.
# This may be replaced when dependencies are built.
