# Empty dependencies file for sec52_fifo_queues.
# This may be replaced when dependencies are built.
