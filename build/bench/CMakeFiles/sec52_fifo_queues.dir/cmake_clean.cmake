file(REMOVE_RECURSE
  "CMakeFiles/sec52_fifo_queues.dir/sec52_fifo_queues.cpp.o"
  "CMakeFiles/sec52_fifo_queues.dir/sec52_fifo_queues.cpp.o.d"
  "sec52_fifo_queues"
  "sec52_fifo_queues.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec52_fifo_queues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
