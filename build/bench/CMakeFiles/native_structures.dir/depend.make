# Empty dependencies file for native_structures.
# This may be replaced when dependencies are built.
