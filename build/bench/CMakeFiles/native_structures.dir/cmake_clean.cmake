file(REMOVE_RECURSE
  "CMakeFiles/native_structures.dir/native_structures.cpp.o"
  "CMakeFiles/native_structures.dir/native_structures.cpp.o.d"
  "native_structures"
  "native_structures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
