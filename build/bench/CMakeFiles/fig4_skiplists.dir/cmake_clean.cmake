file(REMOVE_RECURSE
  "CMakeFiles/fig4_skiplists.dir/fig4_skiplists.cpp.o"
  "CMakeFiles/fig4_skiplists.dir/fig4_skiplists.cpp.o.d"
  "fig4_skiplists"
  "fig4_skiplists.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_skiplists.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
