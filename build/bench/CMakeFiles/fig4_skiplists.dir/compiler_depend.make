# Empty compiler generated dependencies file for fig4_skiplists.
# This may be replaced when dependencies are built.
