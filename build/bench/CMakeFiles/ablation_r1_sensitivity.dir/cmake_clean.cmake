file(REMOVE_RECURSE
  "CMakeFiles/ablation_r1_sensitivity.dir/ablation_r1_sensitivity.cpp.o"
  "CMakeFiles/ablation_r1_sensitivity.dir/ablation_r1_sensitivity.cpp.o.d"
  "ablation_r1_sensitivity"
  "ablation_r1_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_r1_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
