# Empty compiler generated dependencies file for ablation_r1_sensitivity.
# This may be replaced when dependencies are built.
