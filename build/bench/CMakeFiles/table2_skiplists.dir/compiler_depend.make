# Empty compiler generated dependencies file for table2_skiplists.
# This may be replaced when dependencies are built.
