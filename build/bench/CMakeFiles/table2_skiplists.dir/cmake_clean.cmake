file(REMOVE_RECURSE
  "CMakeFiles/table2_skiplists.dir/table2_skiplists.cpp.o"
  "CMakeFiles/table2_skiplists.dir/table2_skiplists.cpp.o.d"
  "table2_skiplists"
  "table2_skiplists.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_skiplists.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
