# Empty compiler generated dependencies file for ablation_rebalance_sim.
# This may be replaced when dependencies are built.
