file(REMOVE_RECURSE
  "CMakeFiles/ablation_rebalance_sim.dir/ablation_rebalance_sim.cpp.o"
  "CMakeFiles/ablation_rebalance_sim.dir/ablation_rebalance_sim.cpp.o.d"
  "ablation_rebalance_sim"
  "ablation_rebalance_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rebalance_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
