file(REMOVE_RECURSE
  "CMakeFiles/table1_linked_lists.dir/table1_linked_lists.cpp.o"
  "CMakeFiles/table1_linked_lists.dir/table1_linked_lists.cpp.o.d"
  "table1_linked_lists"
  "table1_linked_lists.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_linked_lists.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
