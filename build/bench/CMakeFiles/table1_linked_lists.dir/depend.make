# Empty dependencies file for table1_linked_lists.
# This may be replaced when dependencies are built.
