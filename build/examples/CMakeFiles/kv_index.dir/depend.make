# Empty dependencies file for kv_index.
# This may be replaced when dependencies are built.
