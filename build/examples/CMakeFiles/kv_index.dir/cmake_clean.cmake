file(REMOVE_RECURSE
  "CMakeFiles/kv_index.dir/kv_index.cpp.o"
  "CMakeFiles/kv_index.dir/kv_index.cpp.o.d"
  "kv_index"
  "kv_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
