file(REMOVE_RECURSE
  "CMakeFiles/task_dispatch.dir/task_dispatch.cpp.o"
  "CMakeFiles/task_dispatch.dir/task_dispatch.cpp.o.d"
  "task_dispatch"
  "task_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/task_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
