# Empty dependencies file for task_dispatch.
# This may be replaced when dependencies are built.
