file(REMOVE_RECURSE
  "CMakeFiles/rebalance_demo.dir/rebalance_demo.cpp.o"
  "CMakeFiles/rebalance_demo.dir/rebalance_demo.cpp.o.d"
  "rebalance_demo"
  "rebalance_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebalance_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
