# Empty compiler generated dependencies file for rebalance_demo.
# This may be replaced when dependencies are built.
