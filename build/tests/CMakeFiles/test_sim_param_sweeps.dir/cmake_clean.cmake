file(REMOVE_RECURSE
  "CMakeFiles/test_sim_param_sweeps.dir/test_sim_param_sweeps.cpp.o"
  "CMakeFiles/test_sim_param_sweeps.dir/test_sim_param_sweeps.cpp.o.d"
  "test_sim_param_sweeps"
  "test_sim_param_sweeps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_param_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
