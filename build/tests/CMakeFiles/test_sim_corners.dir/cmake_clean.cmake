file(REMOVE_RECURSE
  "CMakeFiles/test_sim_corners.dir/test_sim_corners.cpp.o"
  "CMakeFiles/test_sim_corners.dir/test_sim_corners.cpp.o.d"
  "test_sim_corners"
  "test_sim_corners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_corners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
