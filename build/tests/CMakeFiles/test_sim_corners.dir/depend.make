# Empty dependencies file for test_sim_corners.
# This may be replaced when dependencies are built.
