file(REMOVE_RECURSE
  "CMakeFiles/test_core_structures.dir/test_core_structures.cpp.o"
  "CMakeFiles/test_core_structures.dir/test_core_structures.cpp.o.d"
  "test_core_structures"
  "test_core_structures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
