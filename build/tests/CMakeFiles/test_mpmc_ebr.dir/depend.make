# Empty dependencies file for test_mpmc_ebr.
# This may be replaced when dependencies are built.
