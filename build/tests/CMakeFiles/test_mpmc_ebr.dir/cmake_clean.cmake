file(REMOVE_RECURSE
  "CMakeFiles/test_mpmc_ebr.dir/test_mpmc_ebr.cpp.o"
  "CMakeFiles/test_mpmc_ebr.dir/test_mpmc_ebr.cpp.o.d"
  "test_mpmc_ebr"
  "test_mpmc_ebr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpmc_ebr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
