file(REMOVE_RECURSE
  "CMakeFiles/test_fifo_checker.dir/test_fifo_checker.cpp.o"
  "CMakeFiles/test_fifo_checker.dir/test_fifo_checker.cpp.o.d"
  "test_fifo_checker"
  "test_fifo_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fifo_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
