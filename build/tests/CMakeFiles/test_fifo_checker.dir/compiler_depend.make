# Empty compiler generated dependencies file for test_fifo_checker.
# This may be replaced when dependencies are built.
