# Empty compiler generated dependencies file for test_stress_matrix.
# This may be replaced when dependencies are built.
