file(REMOVE_RECURSE
  "CMakeFiles/test_stress_matrix.dir/test_stress_matrix.cpp.o"
  "CMakeFiles/test_stress_matrix.dir/test_stress_matrix.cpp.o.d"
  "test_stress_matrix"
  "test_stress_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stress_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
