file(REMOVE_RECURSE
  "CMakeFiles/test_sim_structures.dir/test_sim_structures.cpp.o"
  "CMakeFiles/test_sim_structures.dir/test_sim_structures.cpp.o.d"
  "test_sim_structures"
  "test_sim_structures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
