# Empty compiler generated dependencies file for test_sim_structures.
# This may be replaced when dependencies are built.
