file(REMOVE_RECURSE
  "CMakeFiles/test_sim_experiments.dir/test_sim_experiments.cpp.o"
  "CMakeFiles/test_sim_experiments.dir/test_sim_experiments.cpp.o.d"
  "test_sim_experiments"
  "test_sim_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
