# Empty dependencies file for test_sim_rebalance.
# This may be replaced when dependencies are built.
