file(REMOVE_RECURSE
  "CMakeFiles/test_sim_rebalance.dir/test_sim_rebalance.cpp.o"
  "CMakeFiles/test_sim_rebalance.dir/test_sim_rebalance.cpp.o.d"
  "test_sim_rebalance"
  "test_sim_rebalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_rebalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
