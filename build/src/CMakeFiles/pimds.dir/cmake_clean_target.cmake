file(REMOVE_RECURSE
  "libpimds.a"
)
