
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  "ASM"
  )
# The set of files for implicit dependencies of each language:
set(CMAKE_DEPENDS_CHECK_ASM
  "/root/repo/src/sim/fiber_switch.S" "/root/repo/build/src/CMakeFiles/pimds.dir/sim/fiber_switch.S.o"
  )
set(CMAKE_ASM_COMPILER_ID "GNU")

# The include file search paths:
set(CMAKE_ASM_TARGET_INCLUDE_PATH
  "/root/repo/src"
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/faa_queue.cpp" "src/CMakeFiles/pimds.dir/baselines/faa_queue.cpp.o" "gcc" "src/CMakeFiles/pimds.dir/baselines/faa_queue.cpp.o.d"
  "/root/repo/src/baselines/fc_structures.cpp" "src/CMakeFiles/pimds.dir/baselines/fc_structures.cpp.o" "gcc" "src/CMakeFiles/pimds.dir/baselines/fc_structures.cpp.o.d"
  "/root/repo/src/baselines/hoh_list.cpp" "src/CMakeFiles/pimds.dir/baselines/hoh_list.cpp.o" "gcc" "src/CMakeFiles/pimds.dir/baselines/hoh_list.cpp.o.d"
  "/root/repo/src/baselines/lazy_list.cpp" "src/CMakeFiles/pimds.dir/baselines/lazy_list.cpp.o" "gcc" "src/CMakeFiles/pimds.dir/baselines/lazy_list.cpp.o.d"
  "/root/repo/src/baselines/lockfree_skiplist.cpp" "src/CMakeFiles/pimds.dir/baselines/lockfree_skiplist.cpp.o" "gcc" "src/CMakeFiles/pimds.dir/baselines/lockfree_skiplist.cpp.o.d"
  "/root/repo/src/baselines/ms_queue.cpp" "src/CMakeFiles/pimds.dir/baselines/ms_queue.cpp.o" "gcc" "src/CMakeFiles/pimds.dir/baselines/ms_queue.cpp.o.d"
  "/root/repo/src/baselines/seq_structures.cpp" "src/CMakeFiles/pimds.dir/baselines/seq_structures.cpp.o" "gcc" "src/CMakeFiles/pimds.dir/baselines/seq_structures.cpp.o.d"
  "/root/repo/src/common/ebr.cpp" "src/CMakeFiles/pimds.dir/common/ebr.cpp.o" "gcc" "src/CMakeFiles/pimds.dir/common/ebr.cpp.o.d"
  "/root/repo/src/common/latency.cpp" "src/CMakeFiles/pimds.dir/common/latency.cpp.o" "gcc" "src/CMakeFiles/pimds.dir/common/latency.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/pimds.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/pimds.dir/common/stats.cpp.o.d"
  "/root/repo/src/common/thread_utils.cpp" "src/CMakeFiles/pimds.dir/common/thread_utils.cpp.o" "gcc" "src/CMakeFiles/pimds.dir/common/thread_utils.cpp.o.d"
  "/root/repo/src/common/zipf.cpp" "src/CMakeFiles/pimds.dir/common/zipf.cpp.o" "gcc" "src/CMakeFiles/pimds.dir/common/zipf.cpp.o.d"
  "/root/repo/src/core/auto_rebalancer.cpp" "src/CMakeFiles/pimds.dir/core/auto_rebalancer.cpp.o" "gcc" "src/CMakeFiles/pimds.dir/core/auto_rebalancer.cpp.o.d"
  "/root/repo/src/core/local_skiplist.cpp" "src/CMakeFiles/pimds.dir/core/local_skiplist.cpp.o" "gcc" "src/CMakeFiles/pimds.dir/core/local_skiplist.cpp.o.d"
  "/root/repo/src/core/pim_fifo_queue.cpp" "src/CMakeFiles/pimds.dir/core/pim_fifo_queue.cpp.o" "gcc" "src/CMakeFiles/pimds.dir/core/pim_fifo_queue.cpp.o.d"
  "/root/repo/src/core/pim_linked_list.cpp" "src/CMakeFiles/pimds.dir/core/pim_linked_list.cpp.o" "gcc" "src/CMakeFiles/pimds.dir/core/pim_linked_list.cpp.o.d"
  "/root/repo/src/core/pim_skiplist.cpp" "src/CMakeFiles/pimds.dir/core/pim_skiplist.cpp.o" "gcc" "src/CMakeFiles/pimds.dir/core/pim_skiplist.cpp.o.d"
  "/root/repo/src/model/linked_list_model.cpp" "src/CMakeFiles/pimds.dir/model/linked_list_model.cpp.o" "gcc" "src/CMakeFiles/pimds.dir/model/linked_list_model.cpp.o.d"
  "/root/repo/src/model/queue_model.cpp" "src/CMakeFiles/pimds.dir/model/queue_model.cpp.o" "gcc" "src/CMakeFiles/pimds.dir/model/queue_model.cpp.o.d"
  "/root/repo/src/model/skiplist_model.cpp" "src/CMakeFiles/pimds.dir/model/skiplist_model.cpp.o" "gcc" "src/CMakeFiles/pimds.dir/model/skiplist_model.cpp.o.d"
  "/root/repo/src/runtime/system.cpp" "src/CMakeFiles/pimds.dir/runtime/system.cpp.o" "gcc" "src/CMakeFiles/pimds.dir/runtime/system.cpp.o.d"
  "/root/repo/src/runtime/vault.cpp" "src/CMakeFiles/pimds.dir/runtime/vault.cpp.o" "gcc" "src/CMakeFiles/pimds.dir/runtime/vault.cpp.o.d"
  "/root/repo/src/sim/ds/faa_queue.cpp" "src/CMakeFiles/pimds.dir/sim/ds/faa_queue.cpp.o" "gcc" "src/CMakeFiles/pimds.dir/sim/ds/faa_queue.cpp.o.d"
  "/root/repo/src/sim/ds/fc_list.cpp" "src/CMakeFiles/pimds.dir/sim/ds/fc_list.cpp.o" "gcc" "src/CMakeFiles/pimds.dir/sim/ds/fc_list.cpp.o.d"
  "/root/repo/src/sim/ds/fc_queue.cpp" "src/CMakeFiles/pimds.dir/sim/ds/fc_queue.cpp.o" "gcc" "src/CMakeFiles/pimds.dir/sim/ds/fc_queue.cpp.o.d"
  "/root/repo/src/sim/ds/fc_skiplist.cpp" "src/CMakeFiles/pimds.dir/sim/ds/fc_skiplist.cpp.o" "gcc" "src/CMakeFiles/pimds.dir/sim/ds/fc_skiplist.cpp.o.d"
  "/root/repo/src/sim/ds/fine_grained_list.cpp" "src/CMakeFiles/pimds.dir/sim/ds/fine_grained_list.cpp.o" "gcc" "src/CMakeFiles/pimds.dir/sim/ds/fine_grained_list.cpp.o.d"
  "/root/repo/src/sim/ds/list_common.cpp" "src/CMakeFiles/pimds.dir/sim/ds/list_common.cpp.o" "gcc" "src/CMakeFiles/pimds.dir/sim/ds/list_common.cpp.o.d"
  "/root/repo/src/sim/ds/lockfree_skiplist.cpp" "src/CMakeFiles/pimds.dir/sim/ds/lockfree_skiplist.cpp.o" "gcc" "src/CMakeFiles/pimds.dir/sim/ds/lockfree_skiplist.cpp.o.d"
  "/root/repo/src/sim/ds/ms_queue.cpp" "src/CMakeFiles/pimds.dir/sim/ds/ms_queue.cpp.o" "gcc" "src/CMakeFiles/pimds.dir/sim/ds/ms_queue.cpp.o.d"
  "/root/repo/src/sim/ds/pim_list.cpp" "src/CMakeFiles/pimds.dir/sim/ds/pim_list.cpp.o" "gcc" "src/CMakeFiles/pimds.dir/sim/ds/pim_list.cpp.o.d"
  "/root/repo/src/sim/ds/pim_queue.cpp" "src/CMakeFiles/pimds.dir/sim/ds/pim_queue.cpp.o" "gcc" "src/CMakeFiles/pimds.dir/sim/ds/pim_queue.cpp.o.d"
  "/root/repo/src/sim/ds/pim_skiplist.cpp" "src/CMakeFiles/pimds.dir/sim/ds/pim_skiplist.cpp.o" "gcc" "src/CMakeFiles/pimds.dir/sim/ds/pim_skiplist.cpp.o.d"
  "/root/repo/src/sim/ds/pim_skiplist_rebalance.cpp" "src/CMakeFiles/pimds.dir/sim/ds/pim_skiplist_rebalance.cpp.o" "gcc" "src/CMakeFiles/pimds.dir/sim/ds/pim_skiplist_rebalance.cpp.o.d"
  "/root/repo/src/sim/ds/skiplist_common.cpp" "src/CMakeFiles/pimds.dir/sim/ds/skiplist_common.cpp.o" "gcc" "src/CMakeFiles/pimds.dir/sim/ds/skiplist_common.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/pimds.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/pimds.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/fiber.cpp" "src/CMakeFiles/pimds.dir/sim/fiber.cpp.o" "gcc" "src/CMakeFiles/pimds.dir/sim/fiber.cpp.o.d"
  "/root/repo/src/sim/workload.cpp" "src/CMakeFiles/pimds.dir/sim/workload.cpp.o" "gcc" "src/CMakeFiles/pimds.dir/sim/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
