# Empty compiler generated dependencies file for pimds.
# This may be replaced when dependencies are built.
